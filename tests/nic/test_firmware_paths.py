"""End-to-end coverage of the firmware's protocol paths.

Each test runs a full two-node simulation shaped to force one specific
firmware path: eager expected/unexpected, rendezvous expected/unexpected,
payload parking, DMA serialization, and the statistics counters.
"""

import pytest

from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig

PRESETS = [
    NicConfig.baseline(),
    NicConfig.with_alpu(total_cells=32, block_size=8),
]
PRESET_IDS = ["baseline", "alpu32"]


def run_pair(sender, receiver, nic):
    world = MpiWorld(WorldConfig(num_ranks=2, nic=nic))
    results = world.run({0: sender, 1: receiver}, deadline_us=200_000)
    return world, results


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_eager_expected_path(nic):
    """Receive posted first; eager payload DMAs straight to the host."""

    def sender(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=1, tag=9, size=0)  # wait until posted
        yield from mpi.send(dest=1, tag=1, size=1024)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        request = yield from mpi.irecv(source=0, tag=1, size=1024)
        yield from mpi.send(dest=0, tag=9, size=0)
        yield from mpi.wait(request)
        yield from mpi.finalize()
        return request.status

    world, results = run_pair(sender, receiver, nic)
    status = results[1]
    assert status.count == 1024 and status.source == 0 and status.tag == 1
    assert world.nics[1].firmware.headers_matched >= 1
    assert world.nics[1].rx_dma.bytes_moved >= 1024


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_eager_unexpected_payload_parks_then_delivers(nic):
    """Message first, receive later: payload parks in NIC memory."""

    def sender(mpi):
        yield from mpi.init()
        yield from mpi.send(dest=1, tag=1, size=2048)
        yield from mpi.send(dest=1, tag=2, size=0)  # marker
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=0, tag=2, size=0)  # tag-1 is queued now
        request = yield from mpi.recv(source=0, tag=1, size=2048)
        yield from mpi.finalize()
        return request.status

    world, results = run_pair(sender, receiver, nic)
    assert results[1].count == 2048
    firmware = world.nics[1].firmware
    assert firmware.headers_unexpected >= 1


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_rendezvous_expected_path(nic):
    """RTS meets a posted receive: CTS + streamed DATA."""
    size = 32 * 1024

    def sender(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=1, tag=9, size=0)
        yield from mpi.send(dest=1, tag=1, size=size)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        request = yield from mpi.irecv(source=0, tag=1, size=size)
        yield from mpi.send(dest=0, tag=9, size=0)
        yield from mpi.wait(request)
        yield from mpi.finalize()
        return request.latency_ps

    world, results = run_pair(sender, receiver, nic)
    # three wire crossings minimum (RTS, CTS, DATA)
    assert results[1] > 3 * 200_000
    assert world.nics[0].tx_dma.bytes_moved >= size


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_rendezvous_unexpected_path(nic):
    """RTS arrives before the receive: parked, CTS granted at post time."""
    size = 32 * 1024

    def sender(mpi):
        yield from mpi.init()
        big = yield from mpi.isend(dest=1, tag=1, size=size)
        yield from mpi.send(dest=1, tag=2, size=0)
        yield from mpi.wait(big)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=0, tag=2, size=0)
        request = yield from mpi.recv(source=0, tag=1, size=size)
        yield from mpi.finalize()
        return request.status.count

    world, results = run_pair(sender, receiver, nic)
    assert results[1] == size
    assert world.nics[1].firmware.headers_unexpected >= 1


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_back_to_back_payloads_serialize_on_the_dma(nic):
    """Multiple eager payloads share one Rx DMA engine."""
    count, size = 4, 4096

    def sender(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=1, tag=9, size=0)
        for i in range(count):
            yield from mpi.send(dest=1, tag=i, size=size)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        requests = []
        for i in range(count):
            req = yield from mpi.irecv(source=0, tag=i, size=size)
            requests.append(req)
        yield from mpi.send(dest=0, tag=9, size=0)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()

    world, _ = run_pair(sender, receiver, nic)
    rx = world.nics[1].rx_dma
    assert rx.transfers == count
    assert rx.bytes_moved == count * size


def test_queue_statistics_track_peak_depth():
    def sender(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=1, tag=99, size=0)
        for i in range(6):
            yield from mpi.send(dest=1, tag=i, size=0)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        requests = []
        for i in range(6):
            req = yield from mpi.irecv(source=0, tag=i, size=0)
            requests.append(req)
        yield from mpi.send(dest=0, tag=99, size=0)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()

    world, _ = run_pair(sender, receiver, NicConfig.baseline())
    assert world.nics[1].posted_recv_q.max_length == 6
    assert len(world.nics[1].posted_recv_q) == 0  # all consumed


def test_send_queue_drains_completely():
    def sender(mpi):
        yield from mpi.init()
        for i in range(5):
            yield from mpi.send(dest=1, tag=i, size=512)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        for i in range(5):
            yield from mpi.recv(source=0, tag=i, size=512)
        yield from mpi.finalize()

    world, _ = run_pair(sender, receiver, NicConfig.baseline())
    assert len(world.nics[0].send_q) == 0
    assert world.nics[0].send_q.max_length >= 1
