"""Shared differential-traffic harness for matching engines.

One hypothesis-generated :class:`TrafficCase` drives a full 2-rank
simulation against any NIC configuration *and* the pure
:class:`~repro.mpi.matching.MatchingOracle`, then compares pairings.
Every registered match backend is held to the same oracle with the same
traffic -- wildcards, FIFO ordering per (source, context), and
unexpected-queue consumption included.

The case has three phases, fenced by control messages on a dedicated
communicator context (so traffic wildcards can never steal a marker):

1. the receiver pre-posts receives, then signals ready;
2. the sender fires the messages, then signals all-sent (the in-order
   network guarantees the messages have landed first);
3. the receiver posts the post-phase receives -- these must consume from
   the unexpected queue -- then signals posted, and the sender flushes
   oracle-computed *drain* messages so every receive completes (the
   modelled subset has no MPI_Cancel).

All messages are zero-byte (eager), so sends never block on unmatched
rendezvous and unmatched messages may legally outlive the run in the
unexpected queue; the harness checks their count against the oracle too.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.core.match import ANY_TAG
from repro.mpi.communicator import WORLD_CONTEXT, Communicator
from repro.mpi.matching import MatchingOracle, OracleMessage, OracleRecv
from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig

#: the second user context (a duplicated communicator), exercising
#: context separation; kept clear of the dup() counter's range
DUP_COMM = Communicator(context=77, size=2)
#: control-plane context for the phase markers
CTRL_COMM = Communicator(context=1000, size=2)

_READY, _ALL_SENT, _POSTED = 0, 1, 2

#: the two user communicators a case's ``ctx`` index selects between
CONTEXTS = (WORLD_CONTEXT, DUP_COMM.context)


@dataclasses.dataclass(frozen=True)
class TrafficCase:
    """One generated traffic pattern (sender is rank 0, receiver rank 1).

    Receives are ``(source, tag, ctx)`` with ``source`` in
    {0, ANY_SOURCE}, ``tag`` possibly ANY_TAG, and ``ctx`` indexing
    :data:`CONTEXTS`; messages are ``(tag, ctx)``.
    """

    pre_recvs: Tuple[Tuple[int, int, int], ...]
    msgs: Tuple[Tuple[int, int], ...]
    post_recvs: Tuple[Tuple[int, int, int], ...]


def oracle_run(case: TrafficCase) -> Tuple[MatchingOracle, List[Tuple[int, int]]]:
    """Feed the case to the oracle; returns it plus the drain messages.

    Receive ids are posting ordinals (pre then post phase); message ids
    are send ordinals (traffic then drains).  The drains are derived
    from the oracle's leftover posted receives: one concrete message per
    leftover, in posted order, which provably consumes them all (older
    same-context leftovers drain first, other contexts never interfere).
    """
    oracle = MatchingOracle()
    recv_id = 0
    for source, tag, ctx in case.pre_recvs:
        oracle.post_receive(OracleRecv(recv_id, CONTEXTS[ctx], source, tag))
        recv_id += 1
    msg_id = 0
    for tag, ctx in case.msgs:
        oracle.message_arrives(OracleMessage(msg_id, CONTEXTS[ctx], 0, tag))
        msg_id += 1
    for source, tag, ctx in case.post_recvs:
        oracle.post_receive(OracleRecv(recv_id, CONTEXTS[ctx], source, tag))
        recv_id += 1
    drains: List[Tuple[int, int]] = []
    for leftover in list(oracle.posted):
        tag = 0 if leftover.tag == ANY_TAG else leftover.tag
        drains.append((tag, leftover.context))
        oracle.message_arrives(OracleMessage(msg_id, leftover.context, 0, tag))
        msg_id += 1
    assert not oracle.posted, "drain schedule failed to complete every receive"
    return oracle, drains


def _comm_for(context: int):
    """None selects MPI_COMM_WORLD inside the programs."""
    return None if context == WORLD_CONTEXT else DUP_COMM


def simulate(case: TrafficCase, nic: NicConfig):
    """Run the case on a simulated system; returns (world, recv req_ids)."""
    _, drains = oracle_run(case)

    def sender(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=1, tag=_READY, size=0, comm=CTRL_COMM)
        for tag, ctx in case.msgs:
            yield from mpi.send(
                dest=1, tag=tag, size=0, comm=_comm_for(CONTEXTS[ctx])
            )
        yield from mpi.send(dest=1, tag=_ALL_SENT, size=0, comm=CTRL_COMM)
        yield from mpi.recv(source=1, tag=_POSTED, size=0, comm=CTRL_COMM)
        for tag, context in drains:
            yield from mpi.send(dest=1, tag=tag, size=0, comm=_comm_for(context))
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        requests = []
        for source, tag, ctx in case.pre_recvs:
            req = yield from mpi.irecv(
                source=source, tag=tag, size=0, comm=_comm_for(CONTEXTS[ctx])
            )
            requests.append(req)
        yield from mpi.send(dest=0, tag=_READY, size=0, comm=CTRL_COMM)
        yield from mpi.recv(source=0, tag=_ALL_SENT, size=0, comm=CTRL_COMM)
        for source, tag, ctx in case.post_recvs:
            req = yield from mpi.irecv(
                source=source, tag=tag, size=0, comm=_comm_for(CONTEXTS[ctx])
            )
            requests.append(req)
        yield from mpi.send(dest=0, tag=_POSTED, size=0, comm=CTRL_COMM)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()
        return [r.req_id for r in requests]

    world = MpiWorld(WorldConfig(num_ranks=2, nic=nic))
    results = world.run({0: sender, 1: receiver}, deadline_us=500_000)
    return world, results[1]


def normalized_pairings(pairs) -> List[Tuple[int, int]]:
    """Map raw ids to dense ordinals so runs/oracles compare directly."""
    recv_order = {r: i for i, r in enumerate(sorted({r for r, _ in pairs}))}
    send_order = {s: i for i, s in enumerate(sorted({s for _, s in pairs}))}
    return sorted((recv_order[r], send_order[s]) for r, s in pairs)


def check_backend_against_oracle(case: TrafficCase, nic: NicConfig) -> None:
    """The differential assertion every registered backend must pass."""
    oracle, _ = oracle_run(case)
    world, recv_ids = simulate(case, nic)

    # keep only traffic pairings (drop the control-plane markers)
    traffic = set(recv_ids)
    sim_pairs = [
        (r, s) for r, s in world.nics[1].firmware.pairings if r in traffic
    ]
    assert normalized_pairings(sim_pairs) == normalized_pairings(oracle.pairings)
    # unmatched messages sit in the unexpected queue, same count as oracle
    assert len(world.nics[1].unexpected_q) == len(oracle.unexpected)
