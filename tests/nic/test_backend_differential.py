"""Every registered match backend against the oracle, same traffic.

The shared harness in :mod:`tests.nic.traffic` generates one phased
traffic case per example; each registered backend must produce the
oracle's exact pairings and leftover-unexpected count on it.  This is
the single differential gate a new backend has to pass -- register it
and it is automatically tested here.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.match import ANY_SOURCE, ANY_TAG
from repro.nic.backends import registered_backends
from repro.nic.nic import NicConfig

from tests.nic.traffic import (
    TrafficCase,
    check_backend_against_oracle,
    oracle_run,
)


def nic_for_backend(name: str) -> NicConfig:
    """A small NIC configuration exercising the named backend.

    The ALPU gets deliberately tiny geometry (16 cells, blocks of 4) so
    generated cases overflow into the software-suffix path.
    """
    if name == "alpu":
        return NicConfig.with_alpu(total_cells=16, block_size=4)
    return NicConfig.with_backend(name)


_sources = st.sampled_from([ANY_SOURCE, 0])
_msg_tags = st.integers(0, 3)
_recv_tags = st.one_of(st.just(ANY_TAG), _msg_tags)
_ctxs = st.integers(0, 1)
_recvs = st.lists(
    st.tuples(_sources, _recv_tags, _ctxs), max_size=6
).map(tuple)
_msgs = st.lists(st.tuples(_msg_tags, _ctxs), max_size=8).map(tuple)

traffic_cases = st.builds(
    TrafficCase, pre_recvs=_recvs, msgs=_msgs, post_recvs=_recvs
)


@pytest.mark.parametrize("backend", sorted(registered_backends()))
@settings(max_examples=15, deadline=None)
@given(case=traffic_cases)
def test_backend_matches_oracle(backend, case):
    check_backend_against_oracle(case, nic_for_backend(backend))


@pytest.mark.parametrize("backend", sorted(registered_backends()))
def test_backend_on_adversarial_case(backend):
    """A hand-picked case hitting every phase: wildcard stealing order,
    unexpected consumption, post-phase wildcards, and drains."""
    case = TrafficCase(
        pre_recvs=((ANY_SOURCE, ANY_TAG, 0), (0, 2, 0), (0, 2, 1)),
        msgs=((2, 0), (2, 0), (2, 1), (3, 0), (1, 1)),
        post_recvs=((0, ANY_TAG, 1), (ANY_SOURCE, 3, 0), (0, 1, 0)),
    )
    check_backend_against_oracle(case, nic_for_backend(backend))


def test_drain_schedule_completes_every_receive():
    """Harness self-check: leftover posted receives always drain."""
    case = TrafficCase(
        pre_recvs=((0, 1, 0), (ANY_SOURCE, ANY_TAG, 1), (0, 3, 0)),
        msgs=(),
        post_recvs=((0, ANY_TAG, 0),),
    )
    oracle, drains = oracle_run(case)
    assert len(drains) == 4
    assert not oracle.posted
    assert len(oracle.pairings) == 4
