"""Unit tests for the ALPU bus device: FIFOs, timing, ordering."""

from repro.core.alpu import AlpuConfig
from repro.core.commands import (
    Insert,
    MatchFailure,
    MatchSuccess,
    StartAcknowledge,
    StartInsert,
    StopInsert,
)
from repro.core.match import MatchRequest
from repro.nic.alpu_device import AlpuDevice
from repro.sim.engine import Engine
from repro.sim.units import ns


def make(engine=None, **cfg):
    engine = engine or Engine()
    device = AlpuDevice(
        engine, "dev", AlpuConfig(total_cells=16, block_size=4, **cfg)
    )
    return engine, device


def drive_insert(engine, device, bits, mask, tag):
    device.bus_write_command(StartInsert())
    device.bus_write_command(Insert(bits, mask, tag))
    device.bus_write_command(StopInsert())
    engine.run()


def test_match_takes_seven_alpu_cycles():
    engine, device = make()
    device.hw_push_header(MatchRequest(bits=1))
    engine.run()
    # bus not involved for hardware pushes; only the 7-cycle pipeline
    assert engine.now == 14_000
    assert device.result_fifo.pop() == MatchFailure()


def test_bus_write_costs_one_bus_latency_and_delivers_later():
    engine, device = make()
    cost = device.bus_write_command(StartInsert())
    assert cost == ns(20)
    assert device.command_fifo.empty  # not yet delivered
    engine.run()
    assert device.result_fifo.pop() == StartAcknowledge(free_entries=16)


def test_bus_read_costs_round_trip_even_when_empty():
    _, device = make()
    cost, response = device.bus_read_result()
    assert cost == ns(40)
    assert response is None


def test_insert_then_match_through_the_device():
    engine, device = make()
    drive_insert(engine, device, bits=5, mask=0, tag=3)
    device.hw_push_header(MatchRequest(bits=5))
    engine.run()
    responses = device.result_fifo.drain()
    assert responses == [StartAcknowledge(free_entries=16), MatchSuccess(tag=3)]


def test_commands_preempt_waiting_headers():
    """Fig. 3: at the completion of the current match, commands win."""
    engine, device = make()
    # stage both a header and a command at the same instant
    device.hw_push_header(MatchRequest(bits=1))
    device.bus_write_command(StartInsert())
    engine.run()
    responses = device.result_fifo.drain()
    # the header was popped first (it was there before the command's bus
    # delivery), so its failure precedes the acknowledge
    assert responses == [MatchFailure(), StartAcknowledge(free_entries=16)]


def test_held_failure_resolves_after_stop_insert():
    engine, device = make()
    device.bus_write_command(StartInsert())
    engine.run()
    device.hw_push_header(MatchRequest(bits=9))  # will fail; held
    engine.run()
    assert device.result_fifo.drain() == [StartAcknowledge(free_entries=16)]
    device.bus_write_command(Insert(9, 0, 7))  # retried -> success
    engine.run()
    assert device.result_fifo.drain() == [MatchSuccess(tag=7)]
    device.bus_write_command(StopInsert())
    engine.run()
    assert device.result_fifo.drain() == []


def test_result_order_matches_header_order():
    engine, device = make()
    drive_insert(engine, device, bits=1, mask=0, tag=11)
    device.result_fifo.drain()
    device.hw_push_header(MatchRequest(bits=2))  # fail
    device.hw_push_header(MatchRequest(bits=1))  # success
    engine.run()
    assert device.result_fifo.drain() == [MatchFailure(), MatchSuccess(tag=11)]


def test_pipeline_serializes_back_to_back_matches():
    engine, device = make()
    device.hw_push_header(MatchRequest(bits=1))
    device.hw_push_header(MatchRequest(bits=2))
    engine.run()
    # no execution overlap: two matches take 2 x 7 cycles
    assert engine.now == 28_000
