"""Tests for NIC assembly and its hardware hooks."""


from repro.core.cell import CellKind
from repro.network.fabric import Fabric
from repro.network.packet import Packet, PacketKind
from repro.nic.host_interface import PostRecv, PostSend
from repro.nic.nic import Nic, NicConfig
from repro.nic.queues import EntryKind
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo


def build(config=None):
    engine = Engine()
    fabric = Fabric(engine, 2)
    completions = Fifo(name="completions")
    nic = Nic(engine, 1, fabric, completions, config or NicConfig.baseline())
    return engine, fabric, nic


def test_baseline_nic_has_no_alpu():
    _, _, nic = build()
    assert nic.posted_device is None
    assert nic.unexpected_device is None
    assert nic.posted_driver is None


def test_with_alpu_builds_both_flavours():
    _, _, nic = build(NicConfig.with_alpu(128, 16))
    assert nic.posted_device.alpu.config.kind is CellKind.POSTED_RECEIVE
    assert nic.unexpected_device.alpu.config.kind is CellKind.UNEXPECTED
    assert nic.posted_device.alpu.capacity == 128


def test_match_packets_replicate_to_the_posted_alpu():
    engine, fabric, nic = build(NicConfig.with_alpu(32, 8))
    fabric.inject(Packet(PacketKind.EAGER, src=0, dst=1, match_bits=7, payload_bytes=0))
    fabric.inject(Packet(PacketKind.RNDV_CTS, src=0, dst=1, match_bits=0, payload_bytes=0))
    engine.run(until=300_000)
    # only the EAGER header was replicated; the CTS is protocol traffic
    assert nic.posted_device.header_fifo.total_pushed + len(
        nic.posted_device.alpu.results
    ) >= 1
    assert list(nic.posted_pushed_flags) in ([True], [])  # consumed by fw or pending


def test_post_recv_replicates_to_the_unexpected_alpu():
    engine, fabric, nic = build(NicConfig.with_alpu(32, 8))
    nic.deliver_host_command(
        PostRecv(req_id=1, context=1, source=0, tag=5, size=0, buffer_addr=0)
    )
    assert list(nic.unexpected_pushed_flags) == [True]
    assert nic.unexpected_device.header_fifo.total_pushed == 1


def test_post_send_does_not_touch_the_unexpected_alpu():
    engine, fabric, nic = build(NicConfig.with_alpu(32, 8))
    nic.deliver_host_command(
        PostSend(req_id=1, dest=0, context=1, tag=5, size=0, buffer_addr=0)
    )
    assert len(nic.unexpected_pushed_flags) == 0
    assert nic.unexpected_device.header_fifo.total_pushed == 0


def test_kick_pulses_on_every_hardware_event():
    engine, fabric, nic = build()
    before = nic.kick.pulse_count
    fabric.inject(Packet(PacketKind.EAGER, src=0, dst=1, match_bits=0, payload_bytes=0))
    engine.run(until=300_000)
    assert nic.kick.pulse_count > before


def test_queues_share_one_allocator():
    _, _, nic = build()
    entry_a = nic.posted_recv_q.allocate_entry(
        kind=EntryKind.POSTED_RECV, bits=0, mask=0, size=0
    )
    entry_b = nic.unexpected_q.allocate_entry(
        kind=EntryKind.UNEXPECTED_EAGER, bits=0, mask=0, size=0
    )
    assert entry_a.addr != entry_b.addr  # one address space, no overlap
