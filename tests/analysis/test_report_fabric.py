"""Run-report rendering of the fabric section (heatmap + per-link table).

Renders real multi-rank halo runs -- a contended 16-rank torus3d incast
and a 2-rank crossbar -- through every output format and checks that the
three renderings (JSON document, terminal text, HTML) agree on the
fabric totals, that the heatmap names the hotspot, and that fabrics
without a grid shape (crossbar) or without a snapshot at all (legacy
reports) still render.
"""

import html as html_mod
import json

import pytest

from repro.analysis.report import (
    hottest_links,
    load_report,
    render_html,
    render_text,
)
from repro.obs.telemetry import Telemetry
from repro.workloads.halo import HaloParams, run_halo
from repro.workloads.sweep import nic_preset


def _run_report(**params):
    telemetry = Telemetry(
        tracing=False, lifecycle=True, timeline=True, health=True, fabric=True
    )
    run_halo(nic_preset("alpu128"), HaloParams(**params), telemetry=telemetry)
    return telemetry.report()


@pytest.fixture(scope="module")
def hotspot_report():
    """16-rank torus3d halo with incast contention toward rank 0."""
    return _run_report(
        ranks=16,
        topology="torus3d",
        message_size=512,
        iterations=2,
        warmup=1,
        hotspot_rank=0,
    )


@pytest.fixture(scope="module")
def crossbar_report():
    """The degenerate fabric: 2 ranks, one direct channel each way."""
    return _run_report(
        ranks=2, topology="crossbar", message_size=256, iterations=2, warmup=1
    )


class TestHtmlHeatmap:
    def test_fabric_section_renders_with_svg_heatmap(self, hotspot_report):
        html = render_html(hotspot_report)
        assert "<h2>Fabric</h2>" in html
        assert "<svg" in html

    def test_heatmap_names_the_hotspot_link(self, hotspot_report):
        hottest = hottest_links(hotspot_report["fabric"])[0]
        assert hottest["utilization"] > 0
        assert html_mod.escape(hottest["name"]) in render_html(hotspot_report)

    def test_crossbar_renders_without_a_grid(self, crossbar_report):
        # crossbar has no dims, so no heatmap -- but the fabric section,
        # its totals, and the per-link table must still render
        assert crossbar_report["fabric"]["topology"]["dims"] is None
        html = render_html(crossbar_report)
        assert "<h2>Fabric</h2>" in html
        assert "fabric.wire0-&gt;1" in html


class TestTextRendering:
    def test_names_the_hotspot_link(self, hotspot_report):
        text = render_text(hotspot_report)
        assert "hottest link:" in text
        assert hottest_links(hotspot_report["fabric"])[0]["name"] in text

    def test_glyph_heatmap_renders_grid_planes(self, hotspot_report):
        assert "node heatmap" in render_text(hotspot_report)

    def test_crossbar_text_renders(self, crossbar_report):
        text = render_text(crossbar_report)
        assert "fabric:" in text
        assert "node heatmap" not in text


class TestRenderingsAgree:
    @pytest.mark.parametrize("fixture", ["hotspot_report", "crossbar_report"])
    def test_all_formats_agree_on_totals(self, fixture, request):
        document = request.getfixturevalue(fixture)
        fabric = document["fabric"]
        totals = (
            f"{fabric['packets_injected']} packets injected, "
            f"{fabric['packets_delivered']} delivered"
        )
        assert totals in render_text(document)
        assert totals in render_html(document)
        # and the document itself round-trips through JSON unchanged
        assert json.loads(json.dumps(fabric)) == fabric


class TestLegacyDocuments:
    def test_report_without_fabric_renders_unchanged(self, crossbar_report):
        document = dict(crossbar_report, fabric=None)
        assert "fabric:" not in render_text(document)
        assert "<h2>Fabric</h2>" not in render_html(document)

    def test_load_report_upgrades_older_documents(self, tmp_path):
        path = tmp_path / "v2.report.json"
        path.write_text(
            json.dumps({"version": 2, "meta": {}, "metrics": {}})
        )
        document = load_report(str(path))
        assert document["fabric"] is None
        assert "<h2>Fabric</h2>" not in render_html(document)
