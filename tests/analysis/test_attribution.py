"""Latency attribution: budgets sum exactly, and the paper's story holds.

The acceptance criteria of the attribution layer:

* per-message stage budgets sum to the reported end-to-end latency for
  **every** message (the telescoping identity);
* aggregated over a Figure-5 sweep, the search stage grows with queue
  depth for software backends but stays flat for the ALPU;
* attribution-carrying sweeps are bit-identical between the serial and
  process-pool execution paths;
* the ``python -m repro.analysis.attribution`` CLI works end to end.
"""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.analysis.attribution import (
    AttributionError,
    aggregate,
    attribute_run,
    budget_rows,
    crossover_queue_length,
    dominant_stage,
    end_to_end_ps,
    format_report,
    select,
    stage_budget,
    stage_series,
)
from repro.obs import Telemetry
from repro.obs.lifecycle import LifecycleRecorder
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import nic_preset
from repro.workloads.sweep import SweepSpec, run_sweep

FAST = dict(iterations=4, warmup=1)


def ping_lifecycles(preset: str, queue_length: int, **overrides):
    bundle = Telemetry(tracing=False, lifecycle=True)
    params = dict(queue_length=queue_length, traverse_fraction=1.0, **FAST)
    params.update(overrides)
    result = run_preposted(
        nic_preset(preset), PrepostedParams(**params), telemetry=bundle
    )
    picked = select(bundle.lifecycles(), label="ping", timed_only=True)
    return result, picked


class TestTelescoping:
    @pytest.mark.parametrize("preset", ["baseline", "hash", "alpu128"])
    def test_budgets_sum_to_reported_latency_for_every_message(self, preset):
        result, pings = ping_lifecycles(preset, queue_length=20)
        assert len(pings) == FAST["iterations"]
        pings.sort(key=lambda lc: lc.meta["iteration"])
        for lifecycle, latency_ns in zip(pings, result.latencies_ns):
            budget = stage_budget(lifecycle)
            assert sum(budget.values()) == end_to_end_ps(lifecycle)
            assert sum(budget.values()) / 1000 == latency_ns

    def test_incomplete_lifecycle_rejected(self):
        recorder = LifecycleRecorder()
        recorder.begin("send", 0, 1, 0)
        with pytest.raises(AttributionError):
            stage_budget(recorder.lifecycles[0])

    def test_aggregate_shares_sum_to_one(self):
        _, pings = ping_lifecycles("baseline", queue_length=10)
        report = aggregate(pings)
        assert report["count"] == len(pings)
        assert sum(s["share"] for s in report["stages"].values()) == pytest.approx(1.0)


class TestPaperStory:
    """Search residency grows with depth in software, flat on the ALPU."""

    def test_software_search_grows_alpu_flat(self):
        depths = (8, 48)
        software, alpu = {}, {}
        for depth in depths:
            _, pings = ping_lifecycles("baseline", queue_length=depth)
            software[depth] = aggregate(pings)
            _, pings = ping_lifecycles("alpu128", queue_length=depth)
            alpu[depth] = aggregate(pings)
        sw_search = [
            software[d]["stages"]["match_search"]["mean_ns"] for d in depths
        ]
        alpu_search = [
            alpu[d]["stages"]["match_search"]["mean_ns"] for d in depths
        ]
        assert sw_search[1] > sw_search[0] * 2  # grows with queue depth
        assert alpu_search[1] == alpu_search[0]  # O(1): bit-flat
        # and at depth 48 the software search dominates everything else
        assert software[48]["dominant_stage"] == "match_search"
        assert alpu[48]["dominant_stage"] != "match_search"

    def test_crossover_detection(self):
        depths = (4, 16, 48)
        sw_points, alpu_points = [], []
        for depth in depths:
            _, pings = ping_lifecycles("baseline", queue_length=depth)
            sw_points.append((depth, aggregate(pings)))
            _, pings = ping_lifecycles("alpu128", queue_length=depth)
            alpu_points.append((depth, aggregate(pings)))
        software = stage_series(sw_points, "match_search")
        accelerated = stage_series(alpu_points, "match_search")
        crossover = crossover_queue_length(software, accelerated)
        assert crossover in depths  # the list loses somewhere on this axis
        # sanity on the helper's None path: software never above itself
        assert crossover_queue_length(software, software) is None

    def test_dominant_stage_helper(self):
        _, pings = ping_lifecycles("baseline", queue_length=48)
        assert dominant_stage(pings) == "match_search"


class TestSweepIntegration:
    def test_rows_carry_attribution(self):
        spec = SweepSpec.preposted(
            ("baseline",), (8,), (1.0,), lifecycle=True, **FAST
        )
        (row,) = run_sweep(spec)
        assert row.attribution is not None
        agg = row.attribution["aggregate"]
        assert agg["count"] == FAST["iterations"]
        assert agg["end_to_end"]["p50_ns"] == row.latency_ns
        for message in row.attribution["messages"]:
            assert sum(message["stages_ps"].values()) == message["end_to_end_ps"]

    def test_serial_and_parallel_attribution_bit_identical(self):
        spec = SweepSpec.preposted(
            ("baseline", "alpu128"), (6, 12), (1.0,), lifecycle=True, **FAST
        )
        serial = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        assert serial == parallel

    def test_lifecycle_off_leaves_rows_unchanged(self):
        spec = SweepSpec.preposted(("baseline",), (8,), (1.0,), **FAST)
        (row,) = run_sweep(spec)
        assert row.attribution is None and row.metrics is None


class TestRendering:
    def test_format_report_contains_stages_and_total(self):
        _, pings = ping_lifecycles("baseline", queue_length=10)
        report = attribute_run(pings, label=None, timed_only=False)
        text = format_report(report, title="t")
        assert "match_search" in text and "total" in text and "share" in text

    def test_budget_rows_shape(self):
        _, pings = ping_lifecycles("baseline", queue_length=6)
        rows = budget_rows(pings)
        assert all(row["label"] == "ping" for row in rows)
        assert all(
            row["end_to_end_ns"] * 1000 == row["end_to_end_ps"] for row in rows
        )


class TestCli:
    SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis.attribution", *args],
            capture_output=True,
            text=True,
            cwd=self.SRC,
        )

    def test_cli_text_report(self):
        proc = self.run_cli(
            "--benchmark", "preposted", "--backend", "list",
            "--queue-length", "12", "--iterations", "3", "--warmup", "1",
        )
        assert proc.returncode == 0, proc.stderr
        assert "match_search" in proc.stdout
        assert "stages sum exactly" in proc.stdout

    def test_cli_json_dump_and_reload(self, tmp_path):
        dump = tmp_path / "lifecycles.json"
        chrome = tmp_path / "trace.json"
        proc = self.run_cli(
            "--backend", "alpu", "--queue-length", "8",
            "--iterations", "3", "--warmup", "1", "--json",
            "--dump", str(dump), "--chrome", str(chrome),
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        for message in report["messages"]:
            assert sum(message["stages_ps"].values()) == message["end_to_end_ps"]
        trace = json.loads(chrome.read_text())
        assert trace["traceEvents"]
        # the dump round-trips through --input
        proc2 = self.run_cli("--input", str(dump))
        assert proc2.returncode == 0, proc2.stderr
        assert "end-to-end" in proc2.stdout
