"""Tests for the curve-analysis helpers."""

import pytest

from repro.analysis.curves import (
    crossover_length,
    detect_knee,
    fixed_overhead_ns,
    per_entry_slope_ns,
)
from repro.analysis.tables import format_curve, format_rows


def test_slope_on_a_line():
    lengths = [0, 10, 20, 30]
    latencies = [100 + 15 * x for x in lengths]
    assert per_entry_slope_ns(lengths, latencies) == pytest.approx(15.0)


def test_slope_windowing():
    lengths = [0, 10, 100, 200]
    latencies = [100, 250, 10_000, 20_000]
    warm = per_entry_slope_ns(lengths, latencies, hi=10)
    cold = per_entry_slope_ns(lengths, latencies, lo=100)
    assert warm == pytest.approx(15.0)
    assert cold == pytest.approx(100.0)


def test_slope_needs_points_in_window():
    with pytest.raises(ValueError):
        per_entry_slope_ns([1, 2, 3], [1, 2, 3], lo=100)


def test_fixed_overhead_extrapolates_to_zero():
    assert fixed_overhead_ns([2, 4], [130, 160]) == pytest.approx(100.0)
    with pytest.raises(ValueError):
        fixed_overhead_ns([2, 2], [1, 2])


def test_detect_knee_finds_the_cliff():
    lengths = [10, 20, 30, 40, 50]
    latencies = [150, 300, 450, 2000, 3550]  # slope jumps 15 -> 155 at 30
    assert detect_knee(lengths, latencies) == 30


def test_detect_knee_ignores_smooth_curves():
    lengths = [10, 20, 30]
    latencies = [150, 300, 460]
    assert detect_knee(lengths, latencies) is None


def test_detect_knee_ignores_flat_then_steady_growth():
    """An ALPU curve: flat, then constant-slope overflow -- not a knee.

    The flat region must not poison the reference slope (else the first
    growth segment would look like an infinite jump).
    """
    lengths = [10, 100, 140, 160]
    latencies = [700, 700, 1260, 1540]  # 0, then 14 ns/entry twice
    assert detect_knee(lengths, latencies, factor=3.0) is None


def test_crossover_interpolates():
    lengths = [0, 10, 20]
    alpu = [80, 80, 80]  # flat
    baseline = [0, 100, 200]  # linear; exceeds the flat curve at x = 8
    result = crossover_length(lengths, baseline, lengths, alpu)
    assert result == pytest.approx(8.0)


def test_crossover_at_first_sample():
    lengths = [5, 10]
    assert crossover_length(lengths, [100, 200], lengths, [50, 60]) == 5.0


def test_crossover_none_when_never_exceeds():
    lengths = [0, 10]
    assert crossover_length(lengths, [1, 2], lengths, [10, 20]) is None


def test_crossover_requires_shared_samples():
    with pytest.raises(ValueError):
        crossover_length([0, 1], [1, 2], [0, 2], [1, 2])


def test_format_rows():
    text = format_rows(["a", "bb"], [[1, 2], [30, 40]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "30" in lines[3]
    with pytest.raises(ValueError):
        format_rows(["a"], [[1, 2]])


def test_format_curve():
    text = format_curve("baseline", [1, 2], [100.0, 200.0])
    assert "baseline" in text and "1:100" in text
