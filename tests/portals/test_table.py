"""Tests for the Portals-style match list (Section VIII future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.portals import MatchListEntry, PortalTable, PORTALS_MATCH_WIDTH


def me(bits, ignore=0, use_once=True, label=None):
    return MatchListEntry(
        match_bits=bits, ignore_bits=ignore, use_once=use_once, user_ptr=label
    )


@pytest.fixture(params=["software", "alpu"])
def table(request):
    return PortalTable(backend=request.param)


def test_width_validation():
    with pytest.raises(ValueError):
        MatchListEntry(match_bits=1 << PORTALS_MATCH_WIDTH)
    with pytest.raises(ValueError):
        PortalTable(backend="tcam")


def test_first_match_wins(table):
    table.append(me(0xAA, label="first"))
    table.append(me(0xAA, label="second"))
    assert table.deliver(0xAA).user_ptr == "first"
    assert table.deliver(0xAA).user_ptr == "second"
    assert table.deliver(0xAA) is None


def test_ignore_bits_are_dont_cares(table):
    table.append(me(0xF0, ignore=0x0F, label="ranged"))
    assert table.deliver(0xF7).user_ptr == "ranged"
    assert table.deliver(0xE7) is None


def test_use_once_unlinks_persistent_stays(table):
    table.append(me(0x1, use_once=False, label="doorbell"))
    for _ in range(3):
        assert table.deliver(0x1).user_ptr == "doorbell"
    assert len(table) == 1


def test_persistent_entry_keeps_its_list_position(table):
    """A persistent ME ahead of a use-once duplicate must keep winning --
    the ordering wrinkle the ALPU backend repairs after delete-on-match."""
    table.append(me(0x5, use_once=False, label="persistent"))
    table.append(me(0x5, use_once=True, label="younger"))
    assert table.deliver(0x5).user_ptr == "persistent"
    assert table.deliver(0x5).user_ptr == "persistent"
    assert len(table) == 2


def test_explicit_unlink(table):
    first = me(0x2, label="a")
    table.append(first)
    table.append(me(0x2, label="b"))
    table.unlink(first)
    assert table.deliver(0x2).user_ptr == "b"


def test_full_width_matching(table):
    wide = (1 << 63) | 0x1234_5678_9ABC
    table.append(me(wide))
    assert table.deliver(wide) is not None
    assert table.deliver(wide ^ (1 << 63)) is None


def test_alpu_capacity_guard():
    table = PortalTable(backend="alpu", alpu_cells=16)
    for i in range(16):
        table.append(me(i))
    with pytest.raises(RuntimeError, match="full"):
        table.append(me(99))


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("append"),
                st.integers(0, 7),
                st.sampled_from([0, 0b11, 0b101]),
                st.booleans(),
            ),
            st.tuples(st.just("deliver"), st.integers(0, 7)),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_backends_are_differentially_equal(ops):
    """Software list == ALPU backend for any append/deliver trace."""
    software = PortalTable(backend="software")
    hardware = PortalTable(backend="alpu", alpu_cells=64)
    for op in ops:
        if op[0] == "append":
            _, bits, ignore, use_once = op
            if len(software) >= 64:
                continue
            software.append(me(bits, ignore, use_once))
            hardware.append(me(bits, ignore, use_once))
        else:
            _, bits = op
            a = software.deliver(bits)
            b = hardware.deliver(bits)
            if a is None:
                assert b is None
            else:
                assert b is not None
                assert (a.match_bits, a.ignore_bits, a.use_once) == (
                    b.match_bits,
                    b.ignore_bits,
                    b.use_once,
                )
        assert [e.match_bits for e in software.entries()] == [
            e.match_bits for e in hardware.entries()
        ]
