"""Tests for the FPGA area/timing model against Tables IV and V."""

import pytest

from repro.core.alpu import AlpuConfig
from repro.core.cell import CellKind
from repro.fpga.report import (
    TABLE_IV_PUBLISHED,
    TABLE_V_PUBLISHED,
    model_table,
    render_table,
)
from repro.fpga.resources import (
    block_overhead_flipflops,
    cell_flipflops,
    estimate_resources,
)
from repro.fpga.timing import asic_clock_mhz, clock_mhz, critical_path_ns

TOLERANCE = 0.015  # 1.5%


@pytest.mark.parametrize(
    "kind,published",
    [
        (CellKind.POSTED_RECEIVE, TABLE_IV_PUBLISHED),
        (CellKind.UNEXPECTED, TABLE_V_PUBLISHED),
    ],
    ids=["table4", "table5"],
)
def test_model_reproduces_published_tables(kind, published):
    model = model_table(kind)
    for modeled, paper in zip(model, published):
        assert (modeled.total_cells, modeled.block_size) == (
            paper.total_cells,
            paper.block_size,
        )
        for field in ("luts", "flipflops", "slices"):
            a, b = getattr(modeled, field), getattr(paper, field)
            assert abs(a - b) / b < TOLERANCE, (field, modeled, paper)
        assert abs(modeled.speed_mhz - paper.speed_mhz) / paper.speed_mhz < TOLERANCE
        assert modeled.latency_cycles == paper.latency_cycles


def test_cell_flipflops_structure():
    # posted-receive: match + mask + tag + valid = 42 + 42 + 16 + 1
    assert cell_flipflops(CellKind.POSTED_RECEIVE, 42, 16) == 101
    # unexpected: no stored mask
    assert cell_flipflops(CellKind.UNEXPECTED, 42, 16) == 59


def test_unexpected_alpu_needs_far_fewer_flipflops():
    """Masks-as-inputs is the headline area saving of Fig. 2b."""
    posted = estimate_resources(
        AlpuConfig(kind=CellKind.POSTED_RECEIVE, total_cells=256, block_size=16)
    )
    unexpected = estimate_resources(
        AlpuConfig(kind=CellKind.UNEXPECTED, total_cells=256, block_size=16)
    )
    assert unexpected.flipflops < 0.7 * posted.flipflops
    # but the compare/mux logic is essentially the same
    assert abs(unexpected.luts - posted.luts) / posted.luts < 0.01


def test_trends_with_block_size():
    """Bigger blocks: fewer registered request copies (fewer FFs) but a
    wider in-block priority structure (more LUTs)."""
    estimates = [
        estimate_resources(AlpuConfig(total_cells=256, block_size=bs))
        for bs in (8, 16, 32)
    ]
    assert estimates[0].flipflops > estimates[1].flipflops > estimates[2].flipflops
    assert estimates[0].luts < estimates[1].luts < estimates[2].luts


def test_area_scales_roughly_linearly_with_cells():
    small = estimate_resources(AlpuConfig(total_cells=128, block_size=16))
    large = estimate_resources(AlpuConfig(total_cells=256, block_size=16))
    assert 1.9 < large.flipflops / small.flipflops < 2.1
    assert 1.9 < large.luts / small.luts < 2.1


def test_block_overhead_includes_request_registration():
    posted = block_overhead_flipflops(CellKind.POSTED_RECEIVE, 42, 8)
    unexpected = block_overhead_flipflops(CellKind.UNEXPECTED, 42, 8)
    assert unexpected - posted == 42  # the input-mask registration


def test_clock_model():
    assert clock_mhz(8) == pytest.approx(112.0, abs=0.1)
    assert clock_mhz(16) == pytest.approx(112.0, abs=0.1)
    assert clock_mhz(32) == pytest.approx(100.5, abs=0.5)
    # block 32 genuinely misses the 9 ns constraint
    assert critical_path_ns(32) > 9.0
    assert critical_path_ns(16) <= 9.0


def test_asic_projection_hits_500mhz():
    """'the prototypes would all run at about 500MHz' as an ASIC."""
    for block_size in (8, 16, 32):
        assert 500 <= asic_clock_mhz(block_size) <= 565


def test_invalid_block_size():
    with pytest.raises(ValueError):
        critical_path_ns(0)


def test_render_table_smoke():
    text = render_table(
        "Table IV", model_table(CellKind.POSTED_RECEIVE), TABLE_IV_PUBLISHED
    )
    assert "Table IV" in text
    assert "17,37" in text  # published LUT figure appears
