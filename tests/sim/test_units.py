"""Unit tests for time-unit helpers."""

from repro.sim.units import PS_PER_NS, PS_PER_US, cycles_to_ps, ns, ps_to_ns, us


def test_ns_and_us():
    assert ns(1) == PS_PER_NS
    assert ns(20) == 20_000
    assert ns(0.5) == 500
    assert us(1) == PS_PER_US
    assert us(2.5) == 2_500_000


def test_cycles_exact_for_paper_clocks():
    # 2 GHz host: 500 ps; 500 MHz NIC/ALPU: 2000 ps -- both exact
    assert cycles_to_ps(1, 2e9) == 500
    assert cycles_to_ps(1, 500e6) == 2000
    assert cycles_to_ps(7, 500e6) == 14_000


def test_cycles_scale_linearly():
    one = cycles_to_ps(1, 500e6)
    assert cycles_to_ps(1000, 500e6) == 1000 * one


def test_ps_to_ns_roundtrip():
    assert ps_to_ns(ns(123.0)) == 123.0
