"""Unit tests for latency links."""

import pytest

from repro.sim.engine import Engine
from repro.sim.fifo import Fifo
from repro.sim.link import Link


def make(engine, **kwargs):
    dest = Fifo()
    link = Link(engine, "l", dest, **kwargs)
    return link, dest


def test_pure_latency_delivery():
    engine = Engine()
    link, dest = make(engine, latency_ps=1000)
    deliver_at = link.send("msg")
    assert deliver_at == 1000
    engine.run()
    assert dest.pop() == "msg"
    assert engine.now == 1000


def test_in_order_delivery_same_latency():
    engine = Engine()
    link, dest = make(engine, latency_ps=500)
    link.send("a")
    link.send("b")
    engine.run()
    assert dest.drain() == ["a", "b"]


def test_bandwidth_serializes_messages():
    engine = Engine()
    # 1 byte per ps: a 100-byte message occupies the link for 100 ps
    link, dest = make(engine, latency_ps=1000, bandwidth_bytes_per_ps=1.0)
    first = link.send("big", size_bytes=100)
    second = link.send("next", size_bytes=100)
    assert first == 1100
    assert second == 1200  # queued behind the first's serialization
    engine.run()
    assert dest.drain() == ["big", "next"]


def test_zero_size_messages_do_not_occupy_bandwidth():
    engine = Engine()
    link, _ = make(engine, latency_ps=100, bandwidth_bytes_per_ps=1.0)
    assert link.send("a", size_bytes=0) == 100
    assert link.send("b", size_bytes=0) == 100


def test_on_deliver_callback():
    engine = Engine()
    seen = []
    dest = Fifo()
    link = Link(engine, "l", dest, latency_ps=10, on_deliver=seen.append)
    link.send("x")
    engine.run()
    assert seen == ["x"]


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        make(Engine(), latency_ps=-1)


def test_message_counter():
    engine = Engine()
    link, _ = make(engine, latency_ps=1)
    link.send("a")
    link.send("b")
    assert link.messages_sent == 2
