"""Unit tests for signals."""

from repro.sim.signal import Signal


def test_pulse_wakes_each_waiter_once():
    signal = Signal("s")
    hits = []
    signal.add_waiter(lambda: hits.append(1))
    signal.add_waiter(lambda: hits.append(2))
    signal.pulse()
    assert hits == [1, 2]
    signal.pulse()
    assert hits == [1, 2]  # waiters are consumed


def test_set_raises_level_and_wakes():
    signal = Signal()
    hits = []
    signal.add_waiter(lambda: hits.append("woke"))
    signal.set()
    assert signal.level
    assert hits == ["woke"]
    signal.clear()
    assert not signal.level


def test_observers_fire_on_every_pulse():
    signal = Signal()
    count = []
    signal.observe(lambda: count.append(None))
    signal.pulse()
    signal.set()
    signal.pulse()
    assert len(count) == 3


def test_remove_waiter_is_idempotent():
    signal = Signal()
    callback = lambda: None  # noqa: E731
    signal.add_waiter(callback)
    signal.remove_waiter(callback)
    signal.remove_waiter(callback)  # second removal is a no-op
    signal.pulse()
    assert signal.num_waiters == 0


def test_pulse_count_tracks_pulses():
    signal = Signal()
    for _ in range(4):
        signal.pulse()
    assert signal.pulse_count == 4


def test_waiter_registered_during_pulse_not_woken_by_same_pulse():
    signal = Signal()
    hits = []

    def re_register():
        hits.append("first")
        signal.add_waiter(lambda: hits.append("second"))

    signal.add_waiter(re_register)
    signal.pulse()
    assert hits == ["first"]
    signal.pulse()
    assert hits == ["first", "second"]
