"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Process, ProcessState, delay, now, wait_on
from repro.sim.signal import Signal


def test_delay_advances_local_time():
    engine = Engine()
    times = []

    def body():
        times.append((yield now()))
        yield delay(100)
        times.append((yield now()))
        yield delay(50)
        times.append((yield now()))

    Process(engine, body())
    engine.run()
    assert times == [0, 100, 150]


def test_return_value_captured():
    engine = Engine()

    def body():
        yield delay(1)
        return 42

    process = Process(engine, body())
    engine.run()
    assert process.finished
    assert process.result == 42
    assert process.state is ProcessState.FINISHED


def test_wait_on_pulse():
    engine = Engine()
    signal = Signal()
    log = []

    def waiter():
        woke = yield wait_on(signal)
        log.append(("woke", woke, engine.now))

    def firer():
        yield delay(500)
        signal.pulse()

    Process(engine, waiter())
    Process(engine, firer())
    engine.run()
    assert log == [("woke", True, 500)]


def test_wait_on_set_level_returns_immediately():
    engine = Engine()
    signal = Signal()
    signal.set()
    log = []

    def waiter():
        yield wait_on(signal)
        log.append(engine.now)

    Process(engine, waiter())
    engine.run()
    assert log == [0]


def test_wait_on_timeout_returns_false():
    engine = Engine()
    signal = Signal()
    log = []

    def waiter():
        woke = yield wait_on(signal, timeout_ps=250)
        log.append((woke, engine.now))

    Process(engine, waiter())
    engine.run()
    assert log == [(False, 250)]


def test_pulse_cancels_pending_timeout():
    engine = Engine()
    signal = Signal()
    log = []

    def waiter():
        woke = yield wait_on(signal, timeout_ps=1000)
        log.append((woke, engine.now))
        # a second wait proves the stale timeout cannot fire into it
        woke2 = yield wait_on(signal, timeout_ps=5000)
        log.append((woke2, engine.now))

    def firer():
        yield delay(100)
        signal.pulse()

    Process(engine, waiter())
    Process(engine, firer())
    engine.run()
    assert log == [(True, 100), (False, 5100)]


def test_wait_on_another_process():
    engine = Engine()
    log = []

    def worker():
        yield delay(300)
        return "payload"

    worker_proc = Process(engine, worker())

    def boss():
        yield worker_proc
        log.append((worker_proc.result, engine.now))

    Process(engine, boss())
    engine.run()
    assert log == [("payload", 300)]


def test_deferred_start():
    engine = Engine()
    log = []

    def body():
        log.append(engine.now)
        yield delay(1)

    process = Process(engine, body(), start=False)
    engine.schedule(777, process.start)
    engine.run()
    assert log == [777]


def test_double_start_rejected():
    engine = Engine()

    def body():
        yield delay(1)

    process = Process(engine, body())
    engine.run()
    with pytest.raises(SimulationError):
        process.start()


def test_failure_recorded_and_raised():
    engine = Engine()

    def body():
        yield delay(1)
        raise ValueError("boom")

    process = Process(engine, body())
    with pytest.raises(ValueError, match="boom"):
        engine.run()
    assert process.state is ProcessState.FAILED
    assert isinstance(process.error, ValueError)


def test_unknown_yield_command_rejected():
    engine = Engine()

    def body():
        yield "nonsense"

    Process(engine, body())
    with pytest.raises(SimulationError, match="unknown command"):
        engine.run()


def test_negative_delay_rejected_at_construction():
    with pytest.raises(ValueError):
        delay(-5)


def test_yield_from_subgenerators_compose():
    engine = Engine()

    def inner():
        yield delay(10)
        return 5

    def outer():
        value = yield from inner()
        yield delay(value)
        return engine.now

    process = Process(engine, outer())
    engine.run()
    assert process.result == 15
