"""Unit tests for the event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_starts_at_time_zero():
    assert Engine().now == 0


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30, lambda: fired.append("c"))
    engine.schedule(10, lambda: fired.append("a"))
    engine.schedule(20, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 30


def test_same_time_events_fire_in_scheduling_order():
    engine = Engine()
    fired = []
    for label in "abcde":
        engine.schedule(5, lambda label=label: fired.append(label))
    engine.run()
    assert fired == list("abcde")


def test_priority_breaks_same_time_ties():
    engine = Engine()
    fired = []
    engine.schedule(5, lambda: fired.append("low"), priority=1)
    engine.schedule(5, lambda: fired.append("high"), priority=0)
    engine.run()
    assert fired == ["high", "low"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(100, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [100]


def test_schedule_at_past_rejected():
    engine = Engine()
    engine.schedule(50, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(10, lambda: None)


def test_events_can_schedule_events():
    engine = Engine()
    fired = []

    def first():
        fired.append(("first", engine.now))
        engine.schedule(7, lambda: fired.append(("second", engine.now)))

    engine.schedule(3, first)
    engine.run()
    assert fired == [("first", 3), ("second", 10)]


def test_zero_delay_event_runs_after_current_instant_peers():
    engine = Engine()
    fired = []

    def first():
        engine.schedule(0, lambda: fired.append("chained"))
        fired.append("first")

    engine.schedule(5, first)
    engine.schedule(5, lambda: fired.append("peer"))
    engine.run()
    assert fired == ["first", "peer", "chained"]


def test_cancellation_skips_event():
    engine = Engine()
    fired = []
    handle = engine.schedule(10, lambda: fired.append("cancelled"))
    engine.schedule(5, lambda: fired.append("kept"))
    handle.cancel()
    assert handle.cancelled
    engine.run()
    assert fired == ["kept"]


def test_run_until_leaves_future_events_pending():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: fired.append("early"))
    engine.schedule(100, lambda: fired.append("late"))
    engine.run(until=50)
    assert fired == ["early"]
    assert engine.now == 50
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_executes_events_at_boundary():
    engine = Engine()
    fired = []
    engine.schedule(50, lambda: fired.append("boundary"))
    engine.run(until=50)
    assert fired == ["boundary"]


def test_stop_halts_run_without_clock_jump():
    engine = Engine()
    engine.schedule(10, engine.stop)
    engine.schedule(1000, lambda: None)
    engine.run(until=10_000)
    assert engine.now == 10


def test_max_events_guards_livelock():
    engine = Engine()

    def respawn():
        engine.schedule(1, respawn)

    engine.schedule(1, respawn)
    with pytest.raises(SimulationError, match="max_events"):
        engine.run(max_events=100)


def test_events_fired_counter():
    engine = Engine()
    for _ in range(5):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_fired == 5


def test_pending_excludes_cancelled_events():
    engine = Engine()
    keep = engine.schedule(10, lambda: None)
    drop = engine.schedule(20, lambda: None)
    assert engine.pending == 2
    assert engine.raw_pending == 2
    drop.cancel()
    # lazy cancellation: the tombstone stays in the heap, but the live
    # count must not include it
    assert engine.pending == 1
    assert engine.raw_pending == 2
    keep.cancel()
    assert engine.pending == 0
    assert engine.raw_pending == 2
    engine.run()
    assert engine.pending == 0
    assert engine.raw_pending == 0


def test_legacy_trace_keyword_is_gone():
    """The PR-1 ``trace=`` adapter is removed: ``tracer=`` is the only
    tracing hook, and every observability parameter is keyword-only."""
    with pytest.raises(TypeError):
        Engine(trace=lambda t, label: None)
    with pytest.raises(TypeError):
        Engine(lambda t, label: None)


def test_engine_defaults_are_disabled_singletons():
    a, b = Engine(), Engine()
    assert not a.tracer.enabled and not a.metrics.enabled
    assert a.tracer is b.tracer  # shared no-op objects, no per-engine cost
    assert a.metrics is b.metrics


def _live_walk(engine):
    """The pre-optimisation O(n) definition of ``pending``: walk both
    queues (heap + current-instant slot) counting live entries."""
    from repro.sim.event import EVENT_LIVE, STATE

    entries = list(engine._heap) + list(engine._slot)
    return sum(1 for entry in entries if entry[STATE] == EVENT_LIVE)


def test_pending_counter_matches_the_heap_walk():
    """O(1) ``pending`` must agree with the explicit walk at every step of
    a schedule/cancel/fire workout."""
    engine = Engine()
    handles = [engine.schedule(10 * i, lambda: None) for i in range(8)]
    assert engine.pending == _live_walk(engine) == 8
    handles[3].cancel()
    handles[6].cancel()
    assert engine.pending == _live_walk(engine) == 6
    while engine.step():
        # fired events flip ``fired`` rather than leaving the heap eagerly,
        # so compare against the walk after every single event
        assert engine.pending == _live_walk(engine)
    assert engine.pending == _live_walk(engine) == 0


def test_cancel_after_fire_does_not_corrupt_the_counter():
    engine = Engine()
    fired = engine.schedule(1, lambda: None)
    engine.schedule(50, lambda: None)
    engine.run(until=10)
    assert engine.pending == 1
    # the handle's event already ran; cancelling it now must be a no-op
    fired.cancel()
    assert engine.pending == 1
    assert not fired.cancelled
    # double-cancel of a live event is also counted exactly once
    live = engine.schedule(100, lambda: None)
    live.cancel()
    live.cancel()
    assert engine.pending == 1


def test_pending_counter_survives_cancelled_head_in_run():
    engine = Engine()
    head = engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    head.cancel()
    engine.run()
    assert engine.pending == 0
    assert engine.events_fired == 1
