"""Unit tests for the slotted timer wheel behind the reliability layer."""

import pytest

from repro.sim.engine import Engine
from repro.sim.timerwheel import TimerWheel


def test_timers_fire_at_their_deadline_in_arming_order():
    engine = Engine()
    wheel = TimerWheel(engine)
    fired = []
    wheel.schedule(100, lambda: fired.append(("a", engine.now)))
    wheel.schedule(50, lambda: fired.append(("b", engine.now)))
    wheel.schedule(100, lambda: fired.append(("c", engine.now)))
    engine.run()
    assert fired == [("b", 50), ("a", 100), ("c", 100)]


def test_same_deadline_timers_share_one_engine_event():
    engine = Engine()
    wheel = TimerWheel(engine)
    for _ in range(5):
        wheel.schedule(200, lambda: None)
    assert wheel.armed == 5
    # one slot, hence a single pending engine event for all five timers
    assert len(wheel._slots) == 1
    engine.run()
    assert wheel.armed == 0


def test_cancel_before_fire_suppresses_callback():
    engine = Engine()
    wheel = TimerWheel(engine)
    fired = []
    handle = wheel.schedule(10, lambda: fired.append("cancelled"))
    wheel.schedule(10, lambda: fired.append("kept"))
    assert handle.active
    handle.cancel()
    assert not handle.active
    handle.cancel()  # idempotent
    engine.run()
    assert fired == ["kept"]
    assert wheel.armed == 0


def test_cancel_during_fire_stops_same_slot_peer():
    """A callback cancelling a peer in its own slot must prevent it."""
    engine = Engine()
    wheel = TimerWheel(engine)
    fired = []
    handles = {}
    handles["b"] = wheel.schedule(
        30, lambda: (fired.append("a"), handles["b"].cancel())
    )
    handles["b"] = wheel.schedule(30, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a"]


def test_rearm_during_fire_opens_a_fresh_slot():
    engine = Engine()
    wheel = TimerWheel(engine)
    fired = []

    def tick():
        fired.append(engine.now)
        if len(fired) < 3:
            wheel.schedule(40, tick)

    wheel.schedule(40, tick)
    engine.run()
    assert fired == [40, 80, 120]


def test_zero_delay_fires_and_negative_delay_rejected():
    engine = Engine()
    wheel = TimerWheel(engine)
    fired = []
    wheel.schedule(0, lambda: fired.append(engine.now))
    with pytest.raises(ValueError):
        wheel.schedule(-1, lambda: None)
    engine.run()
    assert fired == [0]


def test_armed_counts_across_slots():
    engine = Engine()
    wheel = TimerWheel(engine)
    a = wheel.schedule(10, lambda: None)
    wheel.schedule(20, lambda: None)
    wheel.schedule(20, lambda: None)
    assert wheel.armed == 3
    a.cancel()
    assert wheel.armed == 2
    engine.run()
    assert wheel.armed == 0
