"""Unit tests for bounded FIFOs."""

import pytest

from repro.sim.fifo import Fifo, FifoEmptyError, FifoFullError


def test_fifo_order():
    fifo = Fifo()
    for i in range(5):
        fifo.push(i)
    assert [fifo.pop() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_bounded_fifo_rejects_overflow():
    fifo = Fifo(capacity=2)
    fifo.push("a")
    fifo.push("b")
    assert fifo.full
    with pytest.raises(FifoFullError):
        fifo.push("c")
    assert fifo.try_push("c") is False


def test_pop_from_empty_raises():
    fifo = Fifo()
    with pytest.raises(FifoEmptyError):
        fifo.pop()
    assert fifo.try_pop() is None


def test_peek_does_not_remove():
    fifo = Fifo()
    fifo.push(9)
    assert fifo.peek() == 9
    assert len(fifo) == 1
    with pytest.raises(FifoEmptyError):
        Fifo().peek()


def test_not_empty_signal_levels():
    fifo = Fifo()
    assert not fifo.not_empty.level
    fifo.push(1)
    assert fifo.not_empty.level
    fifo.pop()
    assert not fifo.not_empty.level


def test_not_full_signal_levels():
    fifo = Fifo(capacity=1)
    assert fifo.not_full.level
    fifo.push(1)
    assert not fifo.not_full.level
    fifo.pop()
    assert fifo.not_full.level


def test_free_slots():
    fifo = Fifo(capacity=3)
    assert fifo.free_slots == 3
    fifo.push(1)
    assert fifo.free_slots == 2
    assert Fifo().free_slots is None


def test_drain_returns_in_order_and_empties():
    fifo = Fifo()
    for i in range(4):
        fifo.push(i)
    assert fifo.drain() == [0, 1, 2, 3]
    assert fifo.empty


def test_clear_resets_signals():
    fifo = Fifo(capacity=1)
    fifo.push(1)
    fifo.clear()
    assert fifo.empty
    assert not fifo.not_empty.level
    assert fifo.not_full.level


def test_statistics():
    fifo = Fifo()
    for i in range(3):
        fifo.push(i)
    fifo.pop()
    assert fifo.total_pushed == 3
    assert fifo.total_popped == 1
    assert fifo.high_water == 3


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Fifo(capacity=0)
