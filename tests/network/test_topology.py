"""Tests for topologies, routing, and the routed fabric.

The two load-bearing guarantees: routes are *minimal and deterministic*
on every preset, and per-(src, dst) delivery order survives multi-hop
routing -- the network property MPI's matching semantics build on.
"""

import pytest

from repro.network.fabric import Fabric, FabricConfig
from repro.network.packet import HEADER_BYTES, Packet, PacketKind
from repro.network.topology import (
    TOPOLOGY_PRESETS,
    Topology,
    TopologyConfig,
    balanced_dims,
)
from repro.sim.engine import Engine


def packet(src=0, dst=1, payload=0):
    return Packet(
        kind=PacketKind.EAGER,
        src=src,
        dst=dst,
        match_bits=0,
        payload_bytes=payload,
    )


# ---------------------------------------------------------------- geometry
def test_balanced_dims():
    assert balanced_dims(32, 3) == (2, 4, 4)
    assert balanced_dims(16, 3) == (2, 2, 4)
    assert balanced_dims(64, 3) == (4, 4, 4)
    assert balanced_dims(12, 2) == (3, 4)
    assert balanced_dims(13, 3) == (1, 1, 13)  # prime degenerates to a ring
    with pytest.raises(ValueError):
        balanced_dims(0, 3)


def test_coords_round_trip():
    topo = Topology("torus3d", 24, dims=(2, 3, 4))
    for node in range(24):
        assert topo.index(topo.coords(node)) == node


def test_config_validation():
    with pytest.raises(ValueError, match="unknown topology"):
        TopologyConfig(preset="hypercube")
    with pytest.raises(ValueError, match="takes no dims"):
        TopologyConfig(preset="crossbar", dims=(2, 2))
    with pytest.raises(ValueError, match="needs 3 dims"):
        TopologyConfig(preset="torus3d", dims=(4, 4))
    with pytest.raises(ValueError, match="hold"):
        Topology("torus3d", 32, dims=(2, 2, 2))
    # lists (JSON round trips) normalize to tuples
    assert TopologyConfig(preset="mesh2d", dims=[2, 3]).dims == (2, 3)


def test_fabric_config_validation():
    with pytest.raises(ValueError, match="wire_latency_ps"):
        FabricConfig(wire_latency_ps=-1)
    with pytest.raises(ValueError, match="bandwidth_bytes_per_ps"):
        FabricConfig(bandwidth_bytes_per_ps=0.0)


# ----------------------------------------------------------------- routing
@pytest.mark.parametrize("preset", TOPOLOGY_PRESETS)
@pytest.mark.parametrize("num_nodes", [2, 5, 8, 12, 16])
def test_routes_are_minimal_and_deterministic(preset, num_nodes):
    topo = Topology(preset, num_nodes)
    for src in range(num_nodes):
        for dst in range(num_nodes):
            route = topo.route(src, dst)
            assert route[-1] == dst
            assert len(route) == topo.min_hops(src, dst)
            # deterministic: recomputing gives the identical path
            assert route == topo.route(src, dst)
            # every hop is a physical channel
            prev = src
            for node in route:
                assert (prev, node) in set(topo.channels)
                prev = node


def test_torus_wrap_takes_shorter_direction():
    topo = Topology("ring", 8)
    # 0 -> 6 is shorter backwards (2 hops) than forwards (6 hops)
    assert topo.route(0, 6) == [7, 6]
    # ties (distance 4) break toward +1
    assert topo.route(0, 4) == [1, 2, 3, 4]


def test_dimension_ordered_routing_fixes_lowest_axis_first():
    topo = Topology("torus3d", 16, dims=(2, 2, 4))
    src = topo.index((0, 0, 0))
    dst = topo.index((1, 1, 2))
    route = topo.route(src, dst)
    assert [topo.coords(n) for n in route] == [
        (1, 0, 0),
        (1, 1, 0),
        (1, 1, 1),
        (1, 1, 2),
    ]


def test_crossbar_matches_historical_channel_order():
    topo = Topology("crossbar", 3)
    assert topo.channels == [
        (s, d) for s in range(3) for d in range(3)
    ]
    assert topo.diameter() == 1


# ------------------------------------------------- fabric over topologies
@pytest.mark.parametrize("preset", TOPOLOGY_PRESETS)
def test_per_pair_ordering_holds_on_every_preset(preset):
    """The MPI ordering property: packets of one (src, dst) pair arrive
    in injection order, on every topology, with staggered injections and
    mixed sizes racing through shared channels."""
    num_nodes = 12
    engine = Engine()
    fabric = Fabric(
        engine,
        num_nodes,
        FabricConfig(topology=TopologyConfig(preset=preset)),
    )
    arrivals = {}
    for dst in range(num_nodes):
        fabric.subscribe_rx(
            dst, lambda pkt, d=dst: arrivals.setdefault(d, []).append(pkt)
        )
    pairs = [
        (src, dst)
        for src in range(num_nodes)
        for dst in range(num_nodes)
        if src != dst
    ]
    # bursts of mixed sizes, staggered so injections interleave in time
    for burst, size in enumerate((4096, 0, 512)):
        for index, (src, dst) in enumerate(pairs):
            engine.schedule(
                burst * 50_000 + (index % 7) * 1_000,
                lambda s=src, d=dst, z=size: fabric.inject(packet(s, d, z)),
            )
    engine.run()
    assert fabric.packets_delivered == len(pairs) * 3
    for dst, packets in arrivals.items():
        by_src = {}
        for pkt in packets:
            by_src.setdefault(pkt.src, []).append(pkt.seq)
        for src, seqs in by_src.items():
            assert seqs == sorted(seqs), (preset, src, dst, seqs)


def test_multi_hop_latency_is_per_hop():
    """A 2-hop route pays the store-and-forward serialization twice."""
    engine = Engine()
    config = FabricConfig(topology=TopologyConfig(preset="ring"))
    fabric = Fabric(engine, 4, config)
    assert fabric.topology.min_hops(0, 2) == 2
    fabric.inject(packet(0, 2))
    engine.run()
    per_hop = config.wire_latency_ps + round(
        HEADER_BYTES / config.bandwidth_bytes_per_ps
    )
    assert engine.now == 2 * per_hop
    assert len(fabric.rx_fifo(2)) == 1


def test_shared_channel_contention_serializes():
    """Two flows forced through one ring channel queue behind each other;
    on the crossbar the same flows ride dedicated wires and overlap."""

    def run(preset):
        engine = Engine()
        fabric = Fabric(
            engine, 4, FabricConfig(topology=TopologyConfig(preset=preset))
        )
        # 0->2 (via 1) and 1->2 both cross the 1->2 channel on the ring
        fabric.inject(packet(0, 2, 4096))
        fabric.inject(packet(1, 2, 4096))
        engine.run()
        return engine.now

    assert run("ring") > run("crossbar")


def test_injected_vs_delivered_counters():
    engine = Engine()
    fabric = Fabric(engine, 2)
    fabric.inject(packet())
    # injection happened, delivery has not: the satellite-1 distinction
    assert fabric.packets_injected == 1
    assert fabric.packets_delivered == 0
    assert fabric.in_flight == 1
    engine.run()
    assert fabric.packets_injected == 1
    assert fabric.packets_delivered == 1
    assert fabric.in_flight == 0


def test_link_accessors():
    engine = Engine()
    fabric = Fabric(
        engine, 4, FabricConfig(topology=TopologyConfig(preset="ring"))
    )
    assert fabric.link(0, 1).name == "fabric.wire0->1"
    with pytest.raises(KeyError):
        fabric.link(0, 2)  # not a physical ring channel
    # 4-node ring: 2 directed channels per node, self-channels excluded
    assert len(fabric.links) == 8


@pytest.mark.parametrize("preset,num_nodes", [("torus3d", 16), ("mesh2d", 9)])
def test_route_table_matches_per_pair_routing(preset, num_nodes):
    topology = Topology.build(TopologyConfig(preset=preset), num_nodes)
    table = topology.route_table()
    assert len(table) == num_nodes * (num_nodes - 1)
    for (src, dst), route in table.items():
        assert route == tuple(topology.route(src, dst))


def test_route_table_and_diameter_are_cached():
    topology = Topology.build(TopologyConfig(preset="torus3d"), 16)
    assert topology.route_table() is topology.route_table()
    assert topology.diameter() == topology.diameter()
    # the diameter is the longest minimal route, straight off the table
    assert topology.diameter() == max(
        len(route) for route in topology.route_table().values()
    )
