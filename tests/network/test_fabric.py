"""Unit tests for packets and the fabric."""

import pytest

from repro.network.fabric import Fabric, FabricConfig
from repro.network.packet import HEADER_BYTES, Packet, PacketKind
from repro.sim.engine import Engine


def packet(src=0, dst=1, kind=PacketKind.EAGER, payload=0, **kwargs):
    return Packet(
        kind=kind, src=src, dst=dst, match_bits=0, payload_bytes=payload, **kwargs
    )


def test_wire_bytes_by_kind():
    assert packet(kind=PacketKind.EAGER, payload=100).wire_bytes == HEADER_BYTES + 100
    assert packet(kind=PacketKind.RNDV_RTS, payload=100).wire_bytes == HEADER_BYTES
    assert packet(kind=PacketKind.RNDV_CTS).wire_bytes == HEADER_BYTES
    assert (
        packet(kind=PacketKind.RNDV_DATA, payload=64).wire_bytes == HEADER_BYTES + 64
    )


def test_delivery_after_wire_latency():
    engine = Engine()
    fabric = Fabric(engine, 2)
    fabric.inject(packet())
    engine.run()
    assert engine.now == 200_000 + round(HEADER_BYTES / 0.002)
    assert len(fabric.rx_fifo(1)) == 1


def test_per_pair_ordering_with_mixed_sizes():
    """A small packet sent after a large one must not overtake it."""
    engine = Engine()
    fabric = Fabric(engine, 2)
    fabric.inject(packet(payload=4096))
    fabric.inject(packet(payload=0))
    engine.run()
    first = fabric.rx_fifo(1).pop()
    second = fabric.rx_fifo(1).pop()
    assert first.payload_bytes == 4096
    assert (first.seq, second.seq) == (0, 1)


def test_sequence_numbers_are_per_pair():
    engine = Engine()
    fabric = Fabric(engine, 3)
    a = fabric.inject(packet(src=0, dst=1))
    b = fabric.inject(packet(src=0, dst=2))
    c = fabric.inject(packet(src=0, dst=1))
    assert (a.seq, b.seq, c.seq) == (0, 0, 1)


def test_different_sources_can_overlap():
    engine = Engine()
    fabric = Fabric(engine, 3)
    fabric.inject(packet(src=0, dst=2, payload=4096))
    fabric.inject(packet(src=1, dst=2, payload=4096))
    engine.run()
    # both large packets arrive at the same time: no shared bottleneck
    assert len(fabric.rx_fifo(2)) == 2


def test_rx_subscription_fires_on_delivery():
    engine = Engine()
    fabric = Fabric(engine, 2)
    seen = []
    fabric.subscribe_rx(1, seen.append)
    fabric.inject(packet())
    assert seen == []  # not before the wire latency
    engine.run()
    assert len(seen) == 1


def test_bad_node_ids_rejected():
    fabric = Fabric(Engine(), 2)
    with pytest.raises(ValueError):
        fabric.inject(packet(src=5))
    with pytest.raises(ValueError):
        fabric.inject(packet(dst=5))
    with pytest.raises(ValueError):
        Fabric(Engine(), 0)


def test_custom_config():
    engine = Engine()
    fabric = Fabric(engine, 2, FabricConfig(wire_latency_ps=1000, bandwidth_bytes_per_ps=1.0))
    fabric.inject(packet(payload=0))
    engine.run()
    assert engine.now == 1000 + HEADER_BYTES
