"""The fault model: seeded determinism, fabric behaviour, bit-identity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fabric import Fabric
from repro.network.faults import FaultConfig, FaultModel, Verdict
from repro.network.packet import Packet, PacketKind, header_checksum
from repro.sim.engine import Engine
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import nic_preset
from repro.workloads.unexpected import UnexpectedParams, run_unexpected


def packet(src=0, dst=1, kind=PacketKind.EAGER, payload=0, match_bits=0, **kwargs):
    return Packet(
        kind=kind,
        src=src,
        dst=dst,
        match_bits=match_bits,
        payload_bytes=payload,
        **kwargs,
    )


# ------------------------------------------------------------- configuration
def test_rates_must_be_probabilities():
    with pytest.raises(ValueError, match="drop_rate"):
        FaultConfig(drop_rate=1.5)
    with pytest.raises(ValueError, match="corrupt_rate"):
        FaultConfig(corrupt_rate=-0.1)


def test_rates_must_partition_one_draw():
    with pytest.raises(ValueError, match="sum"):
        FaultConfig(drop_rate=0.6, duplicate_rate=0.6)


def test_enabled_reflects_any_nonzero_rate():
    assert not FaultConfig().enabled
    assert FaultConfig(drop_rate=1e-3).enabled
    assert FaultConfig(reorder_rate=0.5).enabled


# ---------------------------------------------------------------- determinism
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    rates=st.tuples(
        st.floats(0, 0.25), st.floats(0, 0.25), st.floats(0, 0.25), st.floats(0, 0.25)
    ),
    npackets=st.integers(min_value=1, max_value=200),
)
def test_identical_seeds_give_identical_verdicts(seed, rates, npackets):
    drop, dup, reorder, corrupt = rates
    config = FaultConfig(
        seed=seed,
        drop_rate=drop,
        duplicate_rate=dup,
        reorder_rate=reorder,
        corrupt_rate=corrupt,
    )
    a, b = FaultModel(config), FaultModel(config)
    pkt = packet()
    verdicts_a = [a.judge(pkt) for _ in range(npackets)]
    verdicts_b = [b.judge(pkt) for _ in range(npackets)]
    assert verdicts_a == verdicts_b
    assert (a.drops, a.duplicates, a.delays, a.corruptions) == (
        b.drops,
        b.duplicates,
        b.delays,
        b.corruptions,
    )


def test_idle_model_never_draws_from_its_rng():
    model = FaultModel(FaultConfig(seed=3))
    state = model._rng.getstate()
    for _ in range(50):
        assert model.judge(packet()) is Verdict.DELIVER
    assert model._rng.getstate() == state


# ------------------------------------------------------------ fabric verdicts
def fabric_with(config):
    engine = Engine()
    return engine, Fabric(engine, 2, faults=FaultModel(config))


def test_dropped_packet_never_arrives():
    engine, fabric = fabric_with(FaultConfig(seed=0, drop_rate=1.0))
    fabric.inject(packet())
    engine.run()
    assert len(fabric.rx_fifo(1)) == 0
    assert fabric.faults.drops == 1


def test_duplicated_packet_arrives_twice():
    engine, fabric = fabric_with(FaultConfig(seed=0, duplicate_rate=1.0))
    fabric.inject(packet())
    engine.run()
    assert len(fabric.rx_fifo(1)) == 2


def test_delayed_packet_is_overtaken():
    config = FaultConfig(seed=0, reorder_rate=1.0, reorder_delay_ps=1_000_000)
    engine = Engine()
    model = FaultModel(config)
    fabric = Fabric(engine, 2, faults=model)
    first = fabric.inject(packet())
    # disarm the model so the second packet sails through untouched
    fabric.faults = None
    second = fabric.inject(packet())
    engine.run()
    assert model.delays == 1
    arrivals = [fabric.rx_fifo(1).pop(), fabric.rx_fifo(1).pop()]
    assert [p.seq for p in arrivals] == [second.seq, first.seq]


def test_corruption_flips_match_bits_and_stales_the_checksum():
    engine, fabric = fabric_with(FaultConfig(seed=0, corrupt_rate=1.0))
    stamped = fabric.inject(packet(match_bits=0b1010))
    engine.run()
    delivered = fabric.rx_fifo(1).pop()
    assert delivered.match_bits != 0b1010
    assert header_checksum(delivered) != delivered.checksum
    assert stamped.match_bits == delivered.match_bits


def test_no_model_is_the_historical_path():
    engine = Engine()
    fabric = Fabric(engine, 2)
    fabric.inject(packet())
    engine.run()
    assert len(fabric.rx_fifo(1)) == 1


# ----------------------------------------------------- end-to-end bit-identity
FAST = dict(iterations=4, warmup=1)

#: the four pinned BENCH points (see tests/obs/test_zero_perturbation.py)
PINNED = {
    ("preposted", "baseline"): [956.0] * 4,
    ("preposted", "alpu128"): [692.0] * 4,
    ("unexpected", "baseline"): [634.0] * 4,
    ("unexpected", "alpu128"): [692.0] * 4,
}


@pytest.mark.parametrize("workload,preset", sorted(PINNED))
def test_zero_rate_fault_model_is_bit_identical(workload, preset):
    """An attached-but-idle FaultModel must not move a single latency."""
    nic = nic_preset(preset)
    idle = FaultConfig()  # all rates zero
    if workload == "preposted":
        params = PrepostedParams(queue_length=24, traverse_fraction=1.0, **FAST)
        result = run_preposted(nic, params, faults=idle)
    else:
        params = UnexpectedParams(queue_length=16, **FAST)
        result = run_unexpected(nic, params, faults=idle)
    assert result.latencies_ns == PINNED[(workload, preset)]
