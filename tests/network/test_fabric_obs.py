"""Fabric observability: per-hop marks, telescoping, zero perturbation.

The load-bearing guarantees of the fabric-level observability layer:

* per-hop lifecycle marks decompose every wire traversal into
  contention wait + serialization + transit budgets that telescope
  *exactly* onto the traversal's span (property-tested);
* with observability on -- or off -- the simulated schedule is
  bit-identical: marks carry computed timestamps, never events;
* fault verdicts register per link, not just at fabric scope.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.attribution import (
    HOP_STAGES,
    link_budgets,
    stage_budget,
    wire_segments,
)
from repro.network.fabric import Fabric, FabricConfig
from repro.network.faults import FaultConfig, FaultModel
from repro.network.packet import Packet, PacketKind
from repro.network.topology import TopologyConfig
from repro.obs.lifecycle import LifecycleRecorder
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Engine

WIRE_LATENCY_PS = 200_000


def packet(src, dst, uid, payload=256):
    return Packet(
        kind=PacketKind.EAGER,
        src=src,
        dst=dst,
        match_bits=0,
        payload_bytes=payload,
        send_id=uid,
    )


def observed_fabric(num_nodes=16, preset="torus3d", faults=None):
    """(engine, recorder, fabric) with per-hop observability on.

    Every delivery terminates the packet's lifecycle at the landing
    instant (the NIC's job in the full pipeline), so budgets fold over
    exact per-hop residencies.
    """
    recorder = LifecycleRecorder()
    engine = Engine(lifecycle=recorder)
    fabric = Fabric(
        engine,
        num_nodes,
        FabricConfig(topology=TopologyConfig(preset=preset)),
        faults=FaultModel(faults) if faults is not None else None,
        observe_hops=True,
    )
    for node in range(num_nodes):
        fabric.subscribe_rx(
            node, lambda pkt: recorder.mark_uid(pkt.send_id, "complete")
        )
    return engine, recorder, fabric


def send_one(engine, recorder, fabric, src, dst, uid, *, at_ps=0, payload=256):
    """Open a lifecycle for ``uid`` and inject at ``at_ps``."""
    recorder.begin("send", src, uid, time_ps=at_ps)
    recorder.bind_uid(src, uid, uid)
    engine.schedule(
        at_ps, lambda: fabric.inject(packet(src, dst, uid, payload))
    )


# ------------------------------------------------------------- hop marks
class TestHopMarks:
    def test_multi_hop_route_marks_every_link(self):
        engine, recorder, fabric = observed_fabric()
        route = fabric.topology.route(0, 15)
        assert len(route) > 1, "need a multi-hop pair for this test"
        send_one(engine, recorder, fabric, 0, 15, uid=1)
        engine.run()
        (lifecycle,) = recorder.lifecycles
        stages = [m.stage for m in lifecycle.marks]
        hops = len(route)
        assert stages.count("hop_wait") == hops
        assert stages.count("hop_serialize") == hops
        assert stages.count("hop_transit") == hops
        # the wire mark precedes every hop mark
        assert stages.index("wire") < stages.index("hop_wait")
        # the marks walk exactly the deterministic route, in order
        links = [
            m.detail["link"]
            for m in lifecycle.marks
            if m.stage == "hop_serialize"
        ]
        walked = [0] + route
        assert links == [
            f"fabric.wire{a}->{b}" for a, b in zip(walked, walked[1:])
        ]

    def test_crossbar_single_hop(self):
        engine, recorder, fabric = observed_fabric(num_nodes=2, preset="crossbar")
        send_one(engine, recorder, fabric, 0, 1, uid=1)
        engine.run()
        (lifecycle,) = recorder.lifecycles
        stages = [m.stage for m in lifecycle.marks]
        assert stages.count("hop_serialize") == 1

    def test_observe_hops_off_records_no_hop_marks(self):
        recorder = LifecycleRecorder()
        engine = Engine(lifecycle=recorder)
        fabric = Fabric(
            engine,
            16,
            FabricConfig(topology=TopologyConfig(preset="torus3d")),
        )
        recorder.begin("send", 0, 1)
        recorder.bind_uid(0, 1, 1)
        fabric.inject(packet(0, 15, 1))
        engine.run()
        (lifecycle,) = recorder.lifecycles
        assert "wire" in [m.stage for m in lifecycle.marks]
        assert not any(m.stage in HOP_STAGES for m in lifecycle.marks)

    def test_hop_detail_values_match_link_physics(self):
        engine, recorder, fabric = observed_fabric(num_nodes=4, preset="ring")
        send_one(engine, recorder, fabric, 0, 1, uid=1, payload=100)
        engine.run()
        (lifecycle,) = recorder.lifecycles
        link = fabric.link(0, 1)
        by_stage = {m.stage: m for m in lifecycle.marks if m.stage in HOP_STAGES}
        wire_bytes = packet(0, 1, 1, 100).wire_bytes
        assert by_stage["hop_wait"].detail["wait_ps"] == 0
        assert by_stage["hop_serialize"].detail["serialize_ps"] == (
            link.occupancy_ps(wire_bytes)
        )
        assert by_stage["hop_serialize"].detail["bytes"] == wire_bytes
        assert by_stage["hop_transit"].detail["transit_ps"] == link.latency_ps


# ----------------------------------------------------------- telescoping
class TestTelescoping:
    def test_contended_pair_decomposes_exactly(self):
        """The second packet's wait on a busy link lands in hop_wait."""
        engine, recorder, fabric = observed_fabric(num_nodes=4, preset="ring")
        send_one(engine, recorder, fabric, 0, 1, uid=1)
        send_one(engine, recorder, fabric, 0, 1, uid=2)
        engine.run()
        first, second = recorder.lifecycles
        (segment,) = wire_segments(second)
        assert segment["wire_ps"] == 0
        assert segment["hops_ps"] == segment["span_ps"]
        link = fabric.link(0, 1)
        wire_bytes = packet(0, 1, 2).wire_bytes
        waits = [
            hop["residency_ps"]
            for hop in segment["hops"]
            if hop["stage"] == "hop_wait"
        ]
        # queued behind the first packet for its full serialization
        assert waits == [link.occupancy_ps(wire_bytes)]

    def test_link_budgets_fold_by_link(self):
        engine, recorder, fabric = observed_fabric()
        send_one(engine, recorder, fabric, 0, 15, uid=1)
        send_one(engine, recorder, fabric, 0, 15, uid=2)
        engine.run()
        budgets = link_budgets(recorder.lifecycles)
        route = fabric.topology.route(0, 15)
        assert len(budgets) == len(route)
        for entry in budgets.values():
            assert entry["packets"] == 2
            assert entry["transit_ps"] == 2 * WIRE_LATENCY_PS
        # grand totals telescope into the summed wire segments
        total = sum(
            sum(
                entry[key]
                for key in (
                    "wait_ps", "serialize_ps", "transit_ps", "fault_delay_ps"
                )
            )
            for entry in budgets.values()
        )
        spans = sum(
            segment["hops_ps"]
            for lifecycle in recorder.lifecycles
            for segment in wire_segments(lifecycle)
        )
        assert total == spans

    @settings(max_examples=25, deadline=None)
    @given(
        preset=st.sampled_from(("crossbar", "ring", "mesh2d", "torus3d")),
        sends=st.lists(
            st.tuples(
                st.integers(0, 7),        # src
                st.integers(0, 7),        # dst
                st.integers(0, 400_000),  # injection time
                st.integers(0, 512),      # payload bytes
            ),
            min_size=1,
            max_size=12,
        ),
    )
    def test_every_budget_telescopes(self, preset, sends):
        """Property: per-hop budgets sum exactly to the wire span for
        every message, on every preset, under arbitrary contention --
        and the wire stage's own residency collapses to zero."""
        engine, recorder, fabric = observed_fabric(num_nodes=8, preset=preset)
        uid = 0
        for src, dst, at_ps, payload in sends:
            if src == dst:
                continue
            uid += 1
            send_one(
                engine, recorder, fabric, src, dst,
                uid=uid, at_ps=at_ps, payload=payload,
            )
        engine.run()
        for lifecycle in recorder.lifecycles:
            budget = stage_budget(lifecycle)     # asserts total == span
            segments = wire_segments(lifecycle)  # asserts per segment
            assert segments
            assert budget.get("wire", 0) == 0


# ------------------------------------------------------ zero perturbation
class TestZeroPerturbation:
    @pytest.mark.parametrize("preset", ("crossbar", "ring", "torus3d"))
    def test_schedule_bit_identical_with_observability(self, preset):
        """Same injections, observability on vs off: identical arrival
        times, identical final clock, identical event count."""

        def run(observe):
            recorder = LifecycleRecorder() if observe else None
            engine = Engine(lifecycle=recorder)
            fabric = Fabric(
                engine,
                8,
                FabricConfig(topology=TopologyConfig(preset=preset)),
                observe_hops=observe,
            )
            arrivals = []
            for node in range(8):
                fabric.subscribe_rx(
                    node, lambda pkt, n=node: arrivals.append((engine.now, n))
                )
            for uid, (src, dst) in enumerate(
                [(0, 7), (0, 7), (3, 5), (6, 1), (0, 7)], start=1
            ):
                if observe:
                    recorder.begin("send", src, uid)
                    recorder.bind_uid(src, uid, uid)
                fabric.inject(packet(src, dst, uid))
            engine.run()
            return arrivals, engine.now, engine.events_fired

        assert run(True) == run(False)


# ------------------------------------------------------- per-link faults
class TestPerLinkFaults:
    def test_fault_verdicts_count_against_the_link(self):
        engine, recorder, fabric = observed_fabric(
            num_nodes=4,
            preset="crossbar",
            faults=FaultConfig(seed=3, drop_rate=1.0),
        )
        send_one(engine, recorder, fabric, 0, 1, uid=1)
        engine.run()
        assert fabric.fault_totals["dropped"] == 1
        assert fabric.link_faults["fabric.wire0->1"]["dropped"] == 1

    def test_totals_equal_sum_of_per_link(self):
        engine = Engine()
        fabric = Fabric(
            engine,
            4,
            FabricConfig(topology=TopologyConfig(preset="ring")),
            faults=FaultModel(
                FaultConfig(
                    seed=11, drop_rate=0.3, duplicate_rate=0.2, corrupt_rate=0.1
                )
            ),
        )
        for uid in range(40):
            fabric.inject(packet(uid % 4, (uid + 1) % 4, uid + 1))
        engine.run()
        assert any(fabric.fault_totals.values())
        for kind, total in fabric.fault_totals.items():
            assert total == sum(
                counts[kind] for counts in fabric.link_faults.values()
            )

    def test_fault_collectors_register_on_fault_runs_only(self):
        faulty_registry = MetricsRegistry()
        engine = Engine(metrics=faulty_registry)
        Fabric(
            engine,
            2,
            faults=FaultModel(FaultConfig(seed=1, drop_rate=0.5)),
        )
        assert any(
            "wire" in name and "faults_dropped" in name
            for name in faulty_registry.names()
        )
        clean_registry = MetricsRegistry()
        engine = Engine(metrics=clean_registry)
        Fabric(engine, 2)
        assert not any(
            "wire" in name and "faults" in name
            for name in clean_registry.names()
        )


# --------------------------------------------------------------- snapshot
class TestSnapshot:
    def test_snapshot_shape_and_totals(self):
        engine, recorder, fabric = observed_fabric()
        send_one(engine, recorder, fabric, 0, 15, uid=1)
        send_one(engine, recorder, fabric, 3, 2, uid=2)
        engine.run()
        snap = fabric.snapshot()
        assert snap["topology"]["preset"] == "torus3d"
        assert snap["topology"]["num_nodes"] == 16
        assert snap["topology"]["diameter"] == fabric.topology.diameter()
        assert snap["packets_injected"] == 2
        assert snap["packets_delivered"] == 2
        assert snap["in_flight"] == 0
        assert snap["wire_bytes"] == sum(
            link["bytes"] for link in snap["links"]
        )
        routes = fabric.topology.route_table()
        assert snap["pairs"], "traffic ran, the pair matrix must not be empty"
        for pair in snap["pairs"]:
            assert pair["route"] == list(routes[(pair["src"], pair["dst"])])
            assert pair["hops"] == len(pair["route"])

    def test_snapshot_is_json_serializable(self):
        engine, recorder, fabric = observed_fabric(num_nodes=4, preset="mesh2d")
        send_one(engine, recorder, fabric, 0, 3, uid=1)
        engine.run()
        json.dumps(fabric.snapshot())
