"""Chrome trace-event export: schema, track assignment, file round-trip."""

import json

from repro.obs.chrome import PID, chrome_trace_events, to_chrome, write_chrome_trace
from repro.obs.tracer import Tracer


def build_tracer():
    t = Tracer()
    times = iter(range(0, 10_000_000, 1_000_000))
    t.attach_clock(lambda: next(times))
    t.begin("alpu", "dev0.match")
    t.begin("alpu", "dev1.match")  # concurrent span, different component
    t.end("alpu", "dev0.match", {"resolved": 1})
    t.end("alpu", "dev1.match")
    t.instant("network", "fabric.inject", {"bytes": 32})
    t.counter("nic", "postedRecvQ.depth", {"value": 3})
    return t


def test_document_envelope():
    doc = to_chrome(build_tracer().records)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ns"
    json.dumps(doc)  # serializable as-is


def test_event_schema():
    events = chrome_trace_events(build_tracer().records)
    for ev in events:
        assert ev["pid"] == PID
        assert isinstance(ev["tid"], int)
        if ev["ph"] == "M":
            assert ev["name"] == "thread_name"
            assert "name" in ev["args"]
        else:
            assert ev["ph"] in ("B", "E", "i", "C")
            assert isinstance(ev["ts"], float)
            assert "cat" in ev and "name" in ev
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)


def test_timestamps_are_microseconds():
    events = chrome_trace_events(build_tracer().records)
    spans = [e for e in events if e["ph"] in ("B", "E")]
    # the fake clock ticks 1 us (1_000_000 ps) per record
    assert [e["ts"] for e in spans] == [0.0, 1.0, 2.0, 3.0]


def test_concurrent_spans_get_distinct_tracks():
    events = chrome_trace_events(build_tracer().records)
    by_name = {}
    for ev in events:
        if ev["ph"] in ("B", "E"):
            by_name.setdefault(ev["name"], set()).add(ev["tid"])
    # each span name stays on one track; the two devices' tracks differ
    assert all(len(tids) == 1 for tids in by_name.values())
    assert by_name["dev0.match"] != by_name["dev1.match"]


def test_begin_end_balance_per_track():
    events = chrome_trace_events(build_tracer().records)
    depth = {}
    for ev in events:
        if ev["ph"] == "B":
            depth[ev["tid"]] = depth.get(ev["tid"], 0) + 1
        elif ev["ph"] == "E":
            depth[ev["tid"]] = depth.get(ev["tid"], 0) - 1
            assert depth[ev["tid"]] >= 0, "E without matching B on its track"
    assert all(d == 0 for d in depth.values())


def test_points_share_category_track_with_metadata_name():
    events = chrome_trace_events(build_tracer().records)
    meta = {e["tid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
    instant = next(e for e in events if e["ph"] == "i")
    counter = next(e for e in events if e["ph"] == "C")
    assert meta[instant["tid"]] == "network"
    assert meta[counter["tid"]] == "nic"
    span = next(e for e in events if e["ph"] == "B")
    assert meta[span["tid"]] == "alpu: dev0.match"


def test_write_round_trips_through_json(tmp_path):
    path = tmp_path / "out.trace.json"
    written = write_chrome_trace(path, build_tracer().records)
    loaded = json.loads(path.read_text())
    assert loaded == written
    assert loaded["traceEvents"]
