"""Watchdogs: threshold, derivative, stall, metric; the monitor; verdicts."""

import pytest

from repro.obs.health import (
    DerivativeWatchdog,
    ImbalanceWatchdog,
    HealthFinding,
    HealthMonitor,
    MetricWatchdog,
    StallWatchdog,
    ThresholdWatchdog,
    Watchdog,
    default_watchdogs,
    has_finding,
    verdict_of,
)
from repro.obs.timeline import Timeline


def fill(timeline, name, samples, *, mode="sample", window_ps=100):
    series = timeline.series(name, mode=mode, window_ps=window_ps)
    for time_ps, value in samples:
        series.observe(time_ps, value)
    return series


class TestThresholdWatchdog:
    def test_single_offending_window_fires_without_sustain(self):
        timeline = Timeline()
        fill(timeline, "q/depth", [(10, 6.0), (110, 1.0)])
        dog = ThresholdWatchdog("hot", "q/*", stat="last", threshold=5.0)
        (finding,) = dog.evaluate(timeline, {})
        assert finding.code == "hot"
        assert finding.series == "q/depth"
        assert finding.value == 6.0
        assert finding.threshold == 5.0
        assert (finding.start_ps, finding.end_ps) == (0, 100)

    def test_sustain_requires_contiguous_simulated_time(self):
        def run(samples):
            timeline = Timeline()
            fill(timeline, "q/depth", samples)
            dog = ThresholdWatchdog(
                "hot", "q/depth", threshold=5.0, sustain_ps=300
            )
            return dog.evaluate(timeline, {})

        # two offending windows: 200 ps < 300 ps sustain
        assert run([(0, 9.0), (100, 9.0)]) == []
        # three contiguous offending windows: 300 ps, fires
        (finding,) = run([(0, 9.0), (100, 9.0), (200, 9.0)])
        assert (finding.start_ps, finding.end_ps) == (0, 300)
        # an unobserved gap (window 2 missing) breaks the run
        assert run([(0, 9.0), (100, 9.0), (300, 9.0), (400, 9.0)]) == []
        # a sustained run followed by a gap and a short echo still fires
        # (the gap must not drop the earlier, sufficient run)
        (finding,) = run(
            [(0, 9.0), (100, 9.0), (200, 9.0), (500, 9.0)]
        )
        assert (finding.start_ps, finding.end_ps) == (0, 300)

    def test_one_finding_per_series_only(self):
        timeline = Timeline()
        # two separate offending windows with healthy air between them
        fill(timeline, "q/depth", [(0, 9.0), (100, 0.0), (200, 9.0)])
        dog = ThresholdWatchdog("hot", "q/depth", threshold=5.0)
        findings = dog.evaluate(timeline, {})
        assert len(findings) == 1
        assert findings[0].start_ps == 0  # the first offending run

    def test_glob_pattern_covers_every_matching_series(self):
        timeline = Timeline()
        fill(timeline, "nic0.rel/retransmits", [(0, 9.0)])
        fill(timeline, "nic1.rel/retransmits", [(0, 9.0)])
        fill(timeline, "nic0.fw/completions", [(0, 9.0)])
        dog = ThresholdWatchdog("storm", "*.rel/retransmits", threshold=2.0)
        assert [f.series for f in dog.evaluate(timeline, {})] == [
            "nic0.rel/retransmits",
            "nic1.rel/retransmits",
        ]


class TestDerivativeWatchdog:
    SAMPLES = [(0, 0.0), (100, 5.0), (200, 5.0), (300, 12.0)]

    def test_plateaus_allowed_when_not_strict(self):
        timeline = Timeline()
        fill(timeline, "q/depth", self.SAMPLES)
        dog = DerivativeWatchdog(
            "growth", "q/depth", min_rise=10.0, sustain_ps=300, strict=False
        )
        (finding,) = dog.evaluate(timeline, {})
        assert finding.value == 12.0  # the net rise
        assert (finding.start_ps, finding.end_ps) == (0, 400)

    def test_plateau_breaks_a_strict_run(self):
        timeline = Timeline()
        fill(timeline, "q/depth", self.SAMPLES)
        dog = DerivativeWatchdog(
            "growth", "q/depth", min_rise=10.0, sustain_ps=300, strict=True
        )
        assert dog.evaluate(timeline, {}) == []

    def test_small_rises_are_healthy(self):
        timeline = Timeline()
        fill(timeline, "q/depth", self.SAMPLES)
        dog = DerivativeWatchdog(
            "growth", "q/depth", min_rise=50.0, sustain_ps=300, strict=False
        )
        assert dog.evaluate(timeline, {}) == []

    def test_a_drain_breaks_the_run(self):
        timeline = Timeline()
        fill(
            timeline,
            "q/depth",
            [(0, 0.0), (100, 20.0), (200, 1.0), (300, 25.0)],
        )
        dog = DerivativeWatchdog(
            "growth", "q/depth", min_rise=10.0, sustain_ps=300, strict=False
        )
        assert dog.evaluate(timeline, {}) == []


class TestStallWatchdog:
    def make(self, *, progress_flat, progress_window_ps=100):
        timeline = Timeline()
        fill(
            timeline,
            "engine/events",
            [(k * 100, float(10 * k)) for k in range(6)],
            mode="cumulative",
        )
        value = (lambda k: 0.0) if progress_flat else (lambda k: float(k))
        fill(
            timeline,
            "nic0.fw/completions",
            [(k * 100, value(k)) for k in range(6)],
            mode="cumulative",
            window_ps=progress_window_ps,
        )
        return timeline

    def test_activity_without_progress_is_a_stall(self):
        dog = StallWatchdog(
            "livelock", "*.fw/completions", "engine/events", sustain_ps=300
        )
        (finding,) = dog.evaluate(self.make(progress_flat=True), {})
        assert finding.code == "livelock"
        assert finding.severity == "critical"
        # window 0 contributes no activity delta; the stall spans 100..600
        assert (finding.start_ps, finding.end_ps) == (100, 600)

    def test_steady_progress_is_healthy(self):
        dog = StallWatchdog(
            "livelock", "*.fw/completions", "engine/events", sustain_ps=300
        )
        assert dog.evaluate(self.make(progress_flat=False), {}) == []

    def test_short_stalls_are_tolerated(self):
        dog = StallWatchdog(
            "livelock", "*.fw/completions", "engine/events", sustain_ps=5000
        )
        assert dog.evaluate(self.make(progress_flat=True), {}) == []

    def test_mismatched_resolutions_never_fabricate_a_stall(self):
        dog = StallWatchdog(
            "livelock", "*.fw/completions", "engine/events", sustain_ps=300
        )
        timeline = self.make(progress_flat=True, progress_window_ps=200)
        assert dog.evaluate(timeline, {}) == []

    def test_empty_timeline_is_healthy(self):
        dog = StallWatchdog(
            "livelock", "*.fw/completions", "engine/events", sustain_ps=300
        )
        assert dog.evaluate(Timeline(), {}) == []


class TestMetricWatchdog:
    def test_counter_at_threshold_fires(self):
        dog = MetricWatchdog("degraded", "*.fw/backend_degraded")
        (finding,) = dog.evaluate(
            Timeline(), {"nic0.fw/backend_degraded": 1}
        )
        assert finding.series == "nic0.fw/backend_degraded"
        assert finding.value == 1.0

    def test_zero_counter_is_healthy(self):
        dog = MetricWatchdog("degraded", "*.fw/backend_degraded")
        assert dog.evaluate(Timeline(), {"nic0.fw/backend_degraded": 0}) == []

    def test_gauge_dicts_compare_their_value(self):
        dog = MetricWatchdog("big", "g", threshold=2.0)
        assert dog.evaluate(Timeline(), {"g": {"value": 3.0}}) != []
        assert dog.evaluate(Timeline(), {"g": {"value": 1.0}}) == []
        # non-numeric payloads are skipped, not crashed on
        assert dog.evaluate(Timeline(), {"g": {"value": "n/a"}}) == []
        assert dog.evaluate(Timeline(), {"g": "text"}) == []


class TestMonitorAndVerdicts:
    def test_invalid_severity_is_rejected(self):
        with pytest.raises(ValueError):
            Watchdog("x", severity="catastrophic")

    def test_default_battery_codes(self):
        assert [dog.code for dog in default_watchdogs()] == [
            "retransmit_storm",
            "unexpected_backlog_growth",
            "reorder_stall",
            "backend_degraded",
            "unexpected_admission_pressure",
            "sim_livelock",
            "hotspot_link",
            "link_contention",
            "route_imbalance",
        ]

    def test_findings_sort_by_severity_then_code(self):
        timeline = Timeline()
        fill(timeline, "a/x", [(0, 9.0)])
        fill(timeline, "b/x", [(0, 9.0)])
        monitor = HealthMonitor(
            [
                ThresholdWatchdog("mild", "a/x", threshold=1.0),
                ThresholdWatchdog(
                    "bad", "b/x", threshold=1.0, severity="critical"
                ),
                ThresholdWatchdog("also_mild", "b/x", threshold=1.0),
            ]
        )
        findings = monitor.evaluate(timeline, {})
        assert [(f.severity, f.code) for f in findings] == [
            ("critical", "bad"),
            ("warning", "also_mild"),
            ("warning", "mild"),
        ]
        assert monitor.verdict() == "critical"

    def test_evaluation_is_cached(self):
        timeline = Timeline()
        monitor = HealthMonitor([ThresholdWatchdog("hot", "q", threshold=1.0)])
        assert monitor.evaluate(timeline, {}) == []
        assert monitor.verdict() == "healthy"
        # new offending data after the first evaluation changes nothing:
        # a monitor is per-run, evaluated once at the end
        fill(timeline, "q", [(0, 9.0)])
        assert monitor.evaluate(timeline, {}) == []

    def test_verdict_helpers_accept_dicts_and_records(self):
        finding = HealthFinding(
            code="hot",
            severity="warning",
            series="q",
            start_ps=0,
            end_ps=100,
            value=9.0,
            threshold=1.0,
            message="q hot",
        )
        assert verdict_of([]) == "healthy"
        assert verdict_of([finding]) == "warning"
        assert verdict_of([finding.to_obj()]) == "warning"
        assert (
            verdict_of([finding.to_obj(), {**finding.to_obj(), "severity": "critical"}])
            == "critical"
        )
        assert has_finding([finding], "hot")
        assert has_finding([finding.to_obj()], "hot")
        assert not has_finding([finding], "cold")

    def test_finding_round_trips_through_json_shape(self):
        finding = HealthFinding(
            code="hot",
            severity="critical",
            series="q",
            start_ps=100,
            end_ps=400,
            value=9.0,
            threshold=1.0,
            message="q hot",
        )
        assert HealthFinding.from_obj(finding.to_obj()) == finding


class TestImbalanceWatchdog:
    def watchdog(self, **overrides):
        defaults = dict(ratio=4.0, floor=0.25, min_series=4)
        defaults.update(overrides)
        return ImbalanceWatchdog("route_imbalance", "link*/util", **defaults)

    def peers(self, timeline, values):
        for index, value in enumerate(values):
            fill(timeline, f"link{index}/util", [(10, value)])

    def test_fires_when_one_series_dwarfs_its_peers(self):
        timeline = Timeline()
        self.peers(timeline, [0.9, 0.02, 0.02, 0.02, 0.02, 0.02])
        (finding,) = self.watchdog().evaluate(timeline, None)
        assert finding.code == "route_imbalance"
        assert finding.series == "link0/util"
        assert finding.value == pytest.approx(0.9)
        # the message quantifies the skew against the peer mean
        assert "peer series" in finding.message

    def test_balanced_series_stay_quiet(self):
        timeline = Timeline()
        self.peers(timeline, [0.5, 0.45, 0.5, 0.55])
        assert self.watchdog().evaluate(timeline, None) == []

    def test_too_few_series_cannot_trip(self):
        # a 2-rank ring has one series per direction: never an imbalance
        timeline = Timeline()
        self.peers(timeline, [0.9, 0.01])
        assert self.watchdog().evaluate(timeline, None) == []

    def test_floor_suppresses_idle_fabric_skew(self):
        # 10x skew, but everything is near idle: not worth a finding
        timeline = Timeline()
        self.peers(timeline, [0.10, 0.01, 0.01, 0.01])
        assert self.watchdog().evaluate(timeline, None) == []

    def test_ratio_boundary(self):
        timeline = Timeline()
        # exact binary fractions: top == 4.0 * mean with no rounding
        values = [1.0, 0.0625, 0.0625, 0.0625, 0.0625]
        mean = sum(values) / len(values)
        assert 1.0 == 4.0 * mean  # exactly at the ratio: still fires
        self.peers(timeline, values)
        assert self.watchdog().evaluate(timeline, None)
        assert not self.watchdog(ratio=5.0).evaluate(timeline, None)
