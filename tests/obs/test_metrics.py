"""Registry semantics and the cost of the disabled path."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NullRegistry,
    _NullCounter,
    _NullGauge,
    _NullHistogram,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_tracks_high_water(self):
        g = Gauge("depth")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.high_water == 7


class TestHistogram:
    def test_log_scale_buckets(self):
        h = Histogram("t")
        for v in (0, 1, 2, 3, 4, 1000):
            h.record(v)
        # bucket index == bit length: 0->0, 1->1, 2..3->2, 4->3, 1000->10
        assert h.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
        assert h.count == 6
        assert h.min == 0 and h.max == 1000
        assert h.mean == pytest.approx(1010 / 6)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("t").record(-1)

    def test_empty_mean_is_zero(self):
        assert Histogram("t").mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_shapes_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("z/count").inc(3)
        reg.gauge("a/depth").set(4)
        h = reg.histogram("m/lens")
        h.record(2)
        h.record(5)
        reg.register_collector("k/pull", lambda: 42)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["z/count"] == 3
        assert snap["a/depth"] == {"value": 4, "high_water": 4}
        assert snap["m/lens"] == {
            "count": 2,
            "sum": 7,
            "min": 2,
            "max": 5,
            "mean": 3.5,
            "buckets": {"2": 1, "3": 1},
        }
        assert snap["k/pull"] == 42
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_collector_last_registration_wins(self):
        reg = MetricsRegistry()
        reg.register_collector("x", lambda: 1)
        reg.register_collector("x", lambda: 2)
        assert reg.snapshot()["x"] == 2

    def test_non_finite_collector_values_become_none(self):
        reg = MetricsRegistry()
        reg.register_collector("bad", lambda: math.nan)
        reg.register_collector("worse", lambda: math.inf)
        snap = reg.snapshot()
        assert snap["bad"] is None and snap["worse"] is None
        json.dumps(snap)

    def test_names_lists_instruments_and_collectors(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.register_collector("a", lambda: 0)
        assert reg.names() == ["a", "b"]


class TestDisabledPath:
    """The default (disabled) registry must cost ~nothing per event."""

    def test_null_registry_hands_out_shared_singletons(self):
        assert NULL_REGISTRY.counter("anything") is NULL_COUNTER
        assert NULL_REGISTRY.counter("other") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("g") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("h") is NULL_HISTOGRAM

    def test_null_instruments_retain_nothing(self):
        NULL_COUNTER.inc(10)
        NULL_GAUGE.set(99)
        NULL_HISTOGRAM.record(7)
        NULL_REGISTRY.register_collector("x", lambda: 1)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0 and NULL_GAUGE.high_water == 0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.names() == []

    def test_enabled_flags(self):
        assert not NULL_REGISTRY.enabled
        assert not NULL_COUNTER.enabled
        assert MetricsRegistry().enabled
        assert Counter("c").enabled

    def test_disabled_event_cost_is_a_trivial_method(self):
        # The contract: a disabled inc/set/record compiles to an empty
        # function body (no allocation, no branching, no dict writes) --
        # i.e. the per-event overhead is one attribute lookup plus a
        # no-op call.  Pin it by inspecting the bytecode size.
        for method in (_NullCounter.inc, _NullGauge.set, _NullHistogram.record):
            assert len(method.__code__.co_code) <= 16
            assert method.__code__.co_consts == (None,)

    def test_null_registry_is_module_singleton(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)
        from repro.obs import NULL_REGISTRY as reexported

        assert reexported is NULL_REGISTRY
