"""End-to-end telemetry: determinism, zero perturbation, coverage.

These are the acceptance tests of the observability layer:

* two identical runs produce *identical* snapshots and traces
  (determinism -- the layer records only simulated state);
* benchmark latencies are bit-identical with telemetry on vs off
  (zero perturbation -- observers never charge simulated time);
* the trace covers the ALPU, NIC and network layers, and a Figure-5
  sweep row's snapshot carries the counters the analysis needs.
"""

import json

import pytest

from repro.analysis.telemetry import (
    load_report,
    mean_sampled_depth,
    metric_across_rows,
    metric_value,
)
from repro.obs import Telemetry
from repro.workloads.pingpong import PingPongParams, run_pingpong
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import dump_telemetry, nic_preset, sweep_preposted
from repro.workloads.unexpected import UnexpectedParams, run_unexpected

FAST = dict(iterations=4, warmup=1)


def run_traced_pingpong():
    telemetry = Telemetry()
    result = run_pingpong(
        nic_preset("alpu256"), PingPongParams(**FAST), telemetry=telemetry
    )
    return result, telemetry


class TestDeterminism:
    def test_identical_runs_identical_snapshots(self):
        r1, t1 = run_traced_pingpong()
        r2, t2 = run_traced_pingpong()
        assert r1.metrics == r2.metrics
        assert r1.metrics  # non-trivially so

    def test_identical_runs_identical_traces(self):
        _, t1 = run_traced_pingpong()
        _, t2 = run_traced_pingpong()
        assert t1.tracer.records == t2.tracer.records
        assert t1.chrome_trace() == t2.chrome_trace()


class TestZeroPerturbation:
    def test_preposted_latencies_identical_with_telemetry(self):
        params = PrepostedParams(queue_length=24, traverse_fraction=1.0, **FAST)
        plain = run_preposted(nic_preset("alpu128"), params)
        traced = run_preposted(
            nic_preset("alpu128"), params, telemetry=Telemetry()
        )
        assert plain.latencies_ns == traced.latencies_ns
        assert plain.entries_traversed == traced.entries_traversed
        assert plain.metrics is None and traced.metrics

    def test_unexpected_latencies_identical_with_telemetry(self):
        params = UnexpectedParams(queue_length=16, **FAST)
        plain = run_unexpected(nic_preset("baseline"), params)
        traced = run_unexpected(
            nic_preset("baseline"), params, telemetry=Telemetry()
        )
        assert plain.latencies_ns == traced.latencies_ns
        assert plain.entries_traversed == traced.entries_traversed


class TestTraceCoverage:
    def test_trace_spans_alpu_nic_and_network(self):
        _, telemetry = run_traced_pingpong()
        categories = {r.category for r in telemetry.tracer.records}
        assert {"alpu", "nic", "network"} <= categories

    def test_metrics_off_bundle_still_runs(self):
        telemetry = Telemetry(metrics=False, tracing=True)
        result = run_pingpong(
            nic_preset("alpu256"), PingPongParams(**FAST), telemetry=telemetry
        )
        assert result.metrics == {}
        assert telemetry.tracer.records

    def test_tracing_off_bundle_still_counts(self):
        telemetry = Telemetry(tracing=False)
        result = run_pingpong(
            nic_preset("alpu256"), PingPongParams(**FAST), telemetry=telemetry
        )
        assert result.metrics["nic1.alpu.posted/match_successes"] > 0
        assert telemetry.chrome_trace()["traceEvents"] == []


class TestSweepIntegration:
    @pytest.fixture(scope="class")
    def rows(self):
        return sweep_preposted(
            ["alpu256"], [16], [1.0], iterations=4, warmup=1, telemetry=True
        )

    def test_figure5_row_reports_alpu_and_queue_metrics(self, rows):
        snapshot = rows[0].metrics
        # the issue's acceptance criterion: nonzero ALPU match count and
        # posted-queue depth samples on a Figure-5 sweep row
        assert snapshot["nic1.alpu.posted/match_successes"] > 0
        assert snapshot["nic1.postedRecvQ/depth_samples"]["count"] > 0
        assert snapshot["fabric/packets"] > 0

    def test_telemetry_off_rows_have_no_metrics(self):
        rows = sweep_preposted(["baseline"], [4], [1.0], iterations=2, warmup=1)
        assert rows[0].metrics is None

    def test_report_round_trip_and_analysis_helpers(self, rows, tmp_path):
        path = tmp_path / "report.json"
        dump_telemetry(rows, str(path), benchmark="preposted")
        report = load_report(str(path))
        assert report["meta"] == {"benchmark": "preposted"}
        assert len(report["rows"]) == len(rows)
        (successes,) = metric_across_rows(
            report["rows"], "nic1.alpu.posted/match_successes"
        )
        assert successes > 0
        depth = mean_sampled_depth(
            report["rows"][0]["metrics"], "nic1.postedRecvQ"
        )
        assert depth > 0
        # counters flatten, histograms read back via their mean
        assert metric_value(report["rows"][0]["metrics"], "missing") is None

    def test_load_report_rejects_non_reports(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError, match="telemetry report"):
            load_report(str(path))


class TestChromeExportEndToEnd:
    def test_written_trace_is_valid_and_covers_layers(self, tmp_path):
        _, telemetry = run_traced_pingpong()
        path = tmp_path / "pp.trace.json"
        telemetry.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events
        categories = {e["cat"] for e in events if "cat" in e}
        assert {"alpu", "nic", "network"} <= categories
        # every B has its E on the same track
        depth = {}
        for ev in events:
            if ev["ph"] == "B":
                depth[ev["tid"]] = depth.get(ev["tid"], 0) + 1
            elif ev["ph"] == "E":
                depth[ev["tid"]] = depth.get(ev["tid"], 0) - 1
                assert depth[ev["tid"]] >= 0
        assert all(d == 0 for d in depth.values())


class TestFabricSection:
    def test_report_carries_the_attached_fabric_snapshot(self):
        telemetry = Telemetry(fabric=True)
        telemetry.attach_fabric_source(lambda: {"packets_injected": 7})
        assert telemetry.fabric_snapshot() == {"packets_injected": 7}
        assert telemetry.report()["fabric"] == {"packets_injected": 7}

    def test_fabric_off_or_unattached_reports_none(self):
        # off: even an attached source stays silent
        off = Telemetry(fabric=False)
        off.attach_fabric_source(lambda: {"packets_injected": 7})
        assert off.fabric_snapshot() is None
        assert off.report()["fabric"] is None
        # on but nothing attached (no routed fabric in the run)
        assert Telemetry(fabric=True).report()["fabric"] is None

    def test_end_to_end_snapshot_rides_a_real_run(self):
        telemetry = Telemetry(fabric=True)
        run_pingpong(
            nic_preset("alpu128"), PingPongParams(**FAST), telemetry=telemetry
        )
        fabric = telemetry.report()["fabric"]
        assert fabric["packets_injected"] > 0
        assert fabric["packets_injected"] == fabric["packets_delivered"]
