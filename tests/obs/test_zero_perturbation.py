"""The flight recorder and self-profiler never move a latency.

Two layers of pinning:

* the **absolute** pre-PR latencies of four benchmark points are coded
  in (captured before the lifecycle layer existed), so any accidental
  simulated-time charge anywhere in the recording path fails loudly;
* every observability combination (lifecycle, profiler, everything at
  once) must reproduce the plain run **bit-identically**.
"""

import pytest

from repro.obs import Telemetry
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import nic_preset
from repro.workloads.unexpected import UnexpectedParams, run_unexpected

FAST = dict(iterations=4, warmup=1)

#: latencies captured at the commit *before* this observability layer
#: landed -- the recorder must not move them by a single picosecond
PINNED = {
    ("preposted", "baseline"): [956.0, 956.0, 956.0, 956.0],
    ("preposted", "alpu128"): [692.0, 692.0, 692.0, 692.0],
    ("unexpected", "baseline"): [634.0, 634.0, 634.0, 634.0],
    ("unexpected", "alpu128"): [692.0, 692.0, 692.0, 692.0],
}


def run_point(workload: str, preset: str, telemetry=None):
    nic = nic_preset(preset)
    if workload == "preposted":
        params = PrepostedParams(queue_length=24, traverse_fraction=1.0, **FAST)
        return run_preposted(nic, params, telemetry=telemetry)
    params = UnexpectedParams(queue_length=16, **FAST)
    return run_unexpected(nic, params, telemetry=telemetry)


@pytest.mark.parametrize("workload,preset", sorted(PINNED))
class TestPinnedLatencies:
    def test_plain_run_matches_pre_recorder_pin(self, workload, preset):
        result = run_point(workload, preset)
        assert result.latencies_ns == PINNED[(workload, preset)]

    def test_lifecycle_recorder_is_zero_perturbation(self, workload, preset):
        bundle = Telemetry(tracing=False, lifecycle=True)
        result = run_point(workload, preset, telemetry=bundle)
        assert result.latencies_ns == PINNED[(workload, preset)]
        # and it genuinely recorded: the timed pings are all complete
        pings = [
            lc
            for lc in bundle.lifecycles()
            if lc.label == "ping" and lc.meta.get("timed")
        ]
        assert len(pings) == FAST["iterations"]
        assert all(lc.complete for lc in pings)

    def test_profiler_is_zero_perturbation(self, workload, preset):
        bundle = Telemetry(tracing=False, profile=True)
        result = run_point(workload, preset, telemetry=bundle)
        assert result.latencies_ns == PINNED[(workload, preset)]
        assert bundle.profiler.events > 0
        assert bundle.profiler.events_per_sec > 0

    def test_timeline_and_watchdogs_are_zero_perturbation(
        self, workload, preset
    ):
        bundle = Telemetry(tracing=False, timeline=True, health=True)
        result = run_point(workload, preset, telemetry=bundle)
        assert result.latencies_ns == PINNED[(workload, preset)]
        # and they genuinely ran: the timeline has series, the watchdog
        # battery evaluated the healthy benchmark to zero findings
        assert bundle.timeline.names()
        assert any(
            name.endswith("/depth") for name in bundle.timeline.names()
        )
        assert bundle.health_findings() == []
        assert bundle.health_verdict() == "healthy"

    def test_everything_on_is_zero_perturbation(self, workload, preset):
        bundle = Telemetry(lifecycle=True, profile=True, timeline=True, health=True)
        result = run_point(workload, preset, telemetry=bundle)
        assert result.latencies_ns == PINNED[(workload, preset)]


class TestLatencyEqualsLifecycleSpan:
    """The recorder's end-to-end span *is* the benchmark's sample."""

    @pytest.mark.parametrize("preset", ["baseline", "alpu128"])
    def test_ping_spans_equal_reported_latencies(self, preset):
        bundle = Telemetry(tracing=False, lifecycle=True)
        result = run_point("preposted", preset, telemetry=bundle)
        pings = [
            lc
            for lc in bundle.lifecycles()
            if lc.label == "ping" and lc.meta.get("timed")
        ]
        pings.sort(key=lambda lc: lc.meta["iteration"])
        spans_ns = [(lc.end_ps - lc.start_ps) / 1000 for lc in pings]
        assert spans_ns == result.latencies_ns
