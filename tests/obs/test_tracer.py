"""Tracer record semantics: spans, instants, counters, subscribers."""

from repro.obs.tracer import (
    KIND_BEGIN,
    KIND_COUNTER,
    KIND_END,
    KIND_INSTANT,
    NULL_TRACER,
    NullTracer,
    TraceRecord,
    Tracer,
)


def make_clock(times):
    """A fake clock that pops successive timestamps."""
    it = iter(times)
    return lambda: next(it)


def test_records_carry_clock_timestamps():
    t = Tracer()
    t.attach_clock(make_clock([100, 250]))
    t.instant("nic", "a")
    t.instant("nic", "b", {"k": 1})
    assert t.records == [
        TraceRecord(100, "nic", "a", KIND_INSTANT, None),
        TraceRecord(250, "nic", "b", KIND_INSTANT, {"k": 1}),
    ]
    assert len(t) == 2


def test_span_context_manager_emits_balanced_pair():
    t = Tracer()
    t.attach_clock(make_clock([10, 20]))
    with t.span("alpu", "match", {"q": "posted"}):
        pass
    begin, end = t.records
    assert (begin.kind, end.kind) == (KIND_BEGIN, KIND_END)
    assert begin.name == end.name == "match"
    assert begin.args == {"q": "posted"}
    assert (begin.time_ps, end.time_ps) == (10, 20)


def test_span_closes_on_exception():
    t = Tracer()
    try:
        with t.span("nic", "search"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [r.kind for r in t.records] == [KIND_BEGIN, KIND_END]


def test_nested_spans_preserve_emission_order():
    t = Tracer()
    t.begin("alpu", "outer")
    t.begin("alpu", "inner")
    t.end("alpu", "inner", {"ok": True})
    t.end("alpu", "outer")
    kinds = [(r.kind, r.name) for r in t.records]
    assert kinds == [
        (KIND_BEGIN, "outer"),
        (KIND_BEGIN, "inner"),
        (KIND_END, "inner"),
        (KIND_END, "outer"),
    ]


def test_counter_records_values_dict():
    t = Tracer()
    t.counter("nic", "depth", {"value": 7})
    (rec,) = t.records
    assert rec.kind == KIND_COUNTER
    assert rec.args == {"value": 7}


def test_subscribers_see_every_record():
    t = Tracer()
    seen = []
    t.subscribe(seen.append)
    t.instant("network", "inject")
    t.begin("nic", "x")
    assert seen == t.records


def test_clear_drops_records_keeps_subscribers():
    t = Tracer()
    seen = []
    t.subscribe(seen.append)
    t.instant("nic", "a")
    t.clear()
    assert t.records == []
    t.instant("nic", "b")
    assert len(seen) == 2 and len(t.records) == 1


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    NULL_TRACER.begin("x", "y")
    NULL_TRACER.end("x", "y")
    NULL_TRACER.instant("x", "y", {"a": 1})
    NULL_TRACER.counter("x", "y", {"v": 2})
    with NULL_TRACER.span("x", "y"):
        pass
    assert NULL_TRACER.records == ()
    assert len(NULL_TRACER) == 0
    assert isinstance(NULL_TRACER, NullTracer)
