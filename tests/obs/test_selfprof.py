"""Self-profiler: handler attribution labels and aggregation."""

import functools

from repro.obs.selfprof import SimProfiler, handler_label


def free_function(a=0, b=0):
    return a + b


class Component:
    def handler(self):
        pass

    def __call__(self):
        pass


class FalseFunc:
    """Callable carrying a non-callable ``func`` attribute."""

    func = "not a callable"

    def __call__(self):
        pass


def make_closure():
    def inner():
        pass

    return inner


class TestHandlerLabel:
    def test_bound_method_uses_qualified_name(self):
        assert handler_label(Component().handler) == "Component.handler"

    def test_free_function(self):
        assert handler_label(free_function) == "free_function"

    def test_closure_attributes_to_its_scheduling_site(self):
        assert handler_label(make_closure()) == "make_closure"

    def test_lambda_in_method_attributes_to_the_method(self):
        class Site:
            def schedule(self):
                return lambda: None

        # Site itself is test-local, so the label is this test method --
        # the point is that the ``<locals>`` tail is stripped
        label = handler_label(Site().schedule())
        assert "<lambda>" not in label
        assert label.endswith("test_lambda_in_method_attributes_to_the_method")

    def test_partial_unwraps_to_the_wrapped_function(self):
        assert handler_label(functools.partial(free_function, 1)) == (
            "free_function"
        )

    def test_nested_partials_unwrap_fully(self):
        nested = functools.partial(functools.partial(free_function, 1), b=2)
        assert handler_label(nested) == "free_function"

    def test_partial_of_bound_method(self):
        wrapped = functools.partial(Component().handler)
        assert handler_label(wrapped) == "Component.handler"

    def test_callable_instance_uses_its_type(self):
        assert handler_label(Component()) == "Component"

    def test_partial_of_callable_instance(self):
        assert handler_label(functools.partial(Component())) == "Component"

    def test_non_callable_func_attribute_is_not_unwrapped(self):
        assert handler_label(FalseFunc()) == "FalseFunc"


class TestSimProfiler:
    def test_aggregates_per_label(self):
        profiler = SimProfiler()
        profiler.record(free_function, 0.5)
        profiler.record(functools.partial(free_function, 1), 0.25)
        profiler.record(Component().handler, 0.25)
        assert profiler.events == 3
        assert profiler.handler_seconds == 1.0
        assert profiler.handlers["free_function"] == [2, 0.75]
        assert profiler.events_per_sec == 3.0
        snapshot = profiler.snapshot(top=1)
        assert snapshot["events"] == 3
        assert list(snapshot["top_handlers"]) == ["free_function"]

    def test_no_events_means_no_rate(self):
        assert SimProfiler().events_per_sec == 0.0
