"""Windowed timeseries: folding, stats, downsampling, serialization."""

import pytest

from repro.obs.timeline import DEFAULT_WINDOW_PS, Series, Timeline


class TestSeriesFolding:
    def test_samples_fold_into_their_windows(self):
        series = Series("q/depth", window_ps=100)
        series.observe(10, 3.0)
        series.observe(50, 7.0)
        series.observe(150, 1.0)
        assert len(series) == 2
        assert series.points("count") == [(0, 2), (100, 1)]
        assert series.points("min") == [(0, 3.0), (100, 1.0)]
        assert series.points("max") == [(0, 7.0), (100, 1.0)]
        assert series.points("mean") == [(0, 5.0), (100, 1.0)]
        assert series.points("sum") == [(0, 10.0), (100, 1.0)]
        assert series.points("first") == [(0, 3.0), (100, 1.0)]
        assert series.points("last") == [(0, 7.0), (100, 1.0)]

    def test_boundary_sample_opens_the_next_window(self):
        series = Series("x", window_ps=100)
        series.observe(99, 1.0)
        series.observe(100, 2.0)  # [100, 200) -- exactly on the boundary
        assert series.points("count") == [(0, 1), (100, 1)]

    def test_delta_is_the_per_window_increase(self):
        series = Series("retransmits", mode="cumulative", window_ps=100)
        series.observe(10, 0.0)
        series.observe(110, 3.0)
        series.observe(150, 5.0)
        series.observe(310, 5.0)
        # window 0: first observation is the base; window 1: 5-0; then
        # an unobserved gap; window 3: unchanged counter = 0 new events
        assert series.points("delta") == [(0, 0.0), (100, 5.0), (300, 0.0)]

    def test_default_stat_follows_the_mode(self):
        assert Series("a").default_stat == "last"
        assert Series("b", mode="cumulative").default_stat == "delta"

    def test_span_covers_first_to_last_window(self):
        series = Series("x", window_ps=100)
        assert series.span_ps() == 0
        series.observe(250, 1.0)
        series.observe(910, 1.0)
        assert series.span_ps() == 800  # [200, 1000)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            Series("x", mode="gauge")
        with pytest.raises(ValueError):
            Series("x", window_ps=0)
        with pytest.raises(ValueError):
            Series("x", max_windows=1)
        with pytest.raises(ValueError):
            Series("x").points("median")


class TestDownsampling:
    def test_overflow_doubles_window_and_merges_pairs(self):
        series = Series("x", window_ps=10, max_windows=4)
        for k in range(5):  # 5 windows > capacity of 4
            series.observe(k * 10, float(k))
        assert series.window_ps == 20
        assert len(series) == 3
        # pairs (0,1), (2,3) merged; window 4 re-indexed to 2
        assert series.points("count") == [(0, 2), (20, 2), (40, 1)]
        assert series.points("min") == [(0, 0.0), (20, 2.0), (40, 4.0)]
        assert series.points("max") == [(0, 1.0), (20, 3.0), (40, 4.0)]
        assert series.points("last") == [(0, 1.0), (20, 3.0), (40, 4.0)]

    def test_memory_stays_bounded_over_long_runs(self):
        series = Series("x", window_ps=10, max_windows=8)
        for k in range(10_000):
            series.observe(k * 10, float(k % 7))
        assert len(series) <= 8
        assert series.window_ps >= 10 * (10_000 // 8)
        # every sample is still accounted for
        assert sum(v for _, v in series.points("count")) == 10_000

    def test_cumulative_delta_survives_downsampling(self):
        fine = Series("c", mode="cumulative", window_ps=10, max_windows=1000)
        coarse = Series("c", mode="cumulative", window_ps=10, max_windows=4)
        for k in range(64):
            fine.observe(k * 10, float(2 * k))
            coarse.observe(k * 10, float(2 * k))
        # total increase over the run is invariant to resolution
        assert sum(v for _, v in fine.points("delta")) == sum(
            v for _, v in coarse.points("delta")
        )


class TestSerialization:
    def test_series_round_trips(self):
        series = Series("q", mode="cumulative", window_ps=100)
        for t, v in ((10, 1.0), (120, 4.0), (130, 6.0)):
            series.observe(t, v)
        clone = Series.from_obj("q", series.to_obj())
        assert clone.mode == "cumulative"
        assert clone.window_ps == 100
        for stat in ("count", "min", "max", "first", "last", "delta"):
            assert clone.points(stat) == series.points(stat)

    def test_timeline_round_trips(self):
        timeline = Timeline(window_ps=50)
        timeline.series("a").observe(10, 1.0)
        timeline.series("b", mode="cumulative").observe(60, 2.0)
        clone = Timeline.from_obj(timeline.to_obj())
        assert clone.names() == ["a", "b"]
        assert clone.get("b").mode == "cumulative"
        assert clone.get("a").points("last") == [(0, 1.0)]


class TestTimelineRegistry:
    def test_series_is_get_or_create(self):
        timeline = Timeline()
        assert timeline.series("x") is timeline.series("x")
        assert len(timeline) == 1

    def test_mode_conflict_is_an_error(self):
        timeline = Timeline()
        timeline.series("x", mode="sample")
        with pytest.raises(ValueError):
            timeline.series("x", mode="cumulative")

    def test_window_override_applies_at_creation_only(self):
        timeline = Timeline(window_ps=100)
        wide = timeline.series("w", window_ps=1000)
        assert wide.window_ps == 1000
        assert timeline.series("w").window_ps == 1000  # override sticks
        assert timeline.series("normal").window_ps == 100

    def test_default_window_matches_probe_period(self):
        from repro.obs.probe import DEFAULT_INTERVAL_PS

        assert DEFAULT_WINDOW_PS == DEFAULT_INTERVAL_PS

    def test_observe_shorthand(self):
        timeline = Timeline()
        timeline.observe("q", 10, 4.0)
        assert timeline.get("q").points("last") == [(0, 4.0)]
        assert timeline.get("missing") is None
