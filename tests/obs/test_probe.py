"""Sampling probe: periodic ticks, histograms, timelines, zero perturbation."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import SamplingProbe
from repro.obs.timeline import Timeline
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine


def test_probe_samples_on_its_period():
    engine = Engine()
    reg = MetricsRegistry()
    depth = [0]
    probe = SamplingProbe(engine, 100)
    probe.add("nic", "q.depth", lambda: depth[0], reg.histogram("q/depth_samples"))
    probe.start()
    engine.schedule(150, lambda: depth.__setitem__(0, 5))
    engine.run(until=350)  # ticks at 100, 200, 300
    hist = reg.histogram("q/depth_samples")
    assert probe.ticks == 3
    assert hist.count == 3
    assert hist.min == 0 and hist.max == 5


def test_probe_emits_counter_trace_records():
    engine = Engine()
    tracer = Tracer()
    tracer.attach_clock(lambda: engine.now)
    probe = SamplingProbe(engine, 50, tracer=tracer)
    probe.add("nic", "q.depth", lambda: 2)
    probe.start()
    engine.run(until=120)
    counters = [r for r in tracer.records if r.kind == "counter"]
    assert [r.time_ps for r in counters] == [50, 100]
    assert all(r.args == {"value": 2} for r in counters)


def test_start_is_idempotent_and_noop_without_samplers():
    engine = Engine()
    empty = SamplingProbe(engine, 100)
    empty.start()
    assert engine.pending == 0  # nothing scheduled: a bare probe is free

    probe = SamplingProbe(engine, 100)
    probe.add("nic", "x", lambda: 1)
    probe.start()
    probe.start()
    assert engine.pending == 1


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        SamplingProbe(Engine(), 0)


def test_each_tick_lands_in_its_own_window():
    # tick k fires at exactly k * interval -- an exact window boundary --
    # so with window == interval every tick must open window k, never
    # fold back into window k-1
    engine = Engine()
    timeline = Timeline(window_ps=100)
    values = iter(range(1, 100))
    probe = SamplingProbe(engine, 100, timeline=timeline)
    probe.add("nic", "q.depth", lambda: next(values), series="q/depth")
    probe.start()
    engine.run(until=450)  # ticks at 100, 200, 300, 400
    series = timeline.get("q/depth")
    assert probe.ticks == 4
    assert series.points("count") == [(100, 1), (200, 1), (300, 1), (400, 1)]
    assert series.points("last") == [(100, 1), (200, 2), (300, 3), (400, 4)]


def test_cumulative_series_and_window_override_pass_through():
    engine = Engine()
    timeline = Timeline(window_ps=100)
    total = [0]

    def bump_and_read():
        total[0] += 3
        return total[0]

    probe = SamplingProbe(engine, 100, timeline=timeline)
    probe.add(
        "nic",
        "retransmits",
        bump_and_read,
        series="rel/retransmits",
        mode="cumulative",
        window_ps=400,  # wider than the timeline default
    )
    probe.start()
    engine.run(until=850)  # ticks at 100..800
    series = timeline.get("rel/retransmits")
    assert series.mode == "cumulative"
    assert series.window_ps == 400
    # window 0 holds ticks 1..3 (base 3), window 1 ticks 4..7, window 2 tick 8
    assert series.points("delta") == [(0, 6.0), (400, 12.0), (800, 3.0)]


def test_series_are_optional_and_need_a_timeline():
    engine = Engine()
    # no timeline on the probe: a series name is quietly ignored
    probe = SamplingProbe(engine, 100)
    probe.add("nic", "x", lambda: 1, series="q/depth")
    probe.start()
    engine.run(until=250)
    assert probe.ticks == 2  # sampling still works, nothing crashed


def test_probe_does_not_perturb_other_events():
    # pure observer: event times with and without a probe are identical
    def run(with_probe):
        engine = Engine()
        times = []
        for d in (30, 70, 110, 400):
            engine.schedule(d, lambda: times.append(engine.now))
        if with_probe:
            probe = SamplingProbe(engine, 25)
            probe.add("nic", "x", lambda: 1)
            probe.start()
        engine.run(until=500)
        return times

    assert run(False) == run(True)
