"""Sampling probe: periodic ticks, histograms, zero perturbation."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import SamplingProbe
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine


def test_probe_samples_on_its_period():
    engine = Engine()
    reg = MetricsRegistry()
    depth = [0]
    probe = SamplingProbe(engine, 100)
    probe.add("nic", "q.depth", lambda: depth[0], reg.histogram("q/depth_samples"))
    probe.start()
    engine.schedule(150, lambda: depth.__setitem__(0, 5))
    engine.run(until=350)  # ticks at 100, 200, 300
    hist = reg.histogram("q/depth_samples")
    assert probe.ticks == 3
    assert hist.count == 3
    assert hist.min == 0 and hist.max == 5


def test_probe_emits_counter_trace_records():
    engine = Engine()
    tracer = Tracer()
    tracer.attach_clock(lambda: engine.now)
    probe = SamplingProbe(engine, 50, tracer=tracer)
    probe.add("nic", "q.depth", lambda: 2)
    probe.start()
    engine.run(until=120)
    counters = [r for r in tracer.records if r.kind == "counter"]
    assert [r.time_ps for r in counters] == [50, 100]
    assert all(r.args == {"value": 2} for r in counters)


def test_start_is_idempotent_and_noop_without_samplers():
    engine = Engine()
    empty = SamplingProbe(engine, 100)
    empty.start()
    assert engine.pending == 0  # nothing scheduled: a bare probe is free

    probe = SamplingProbe(engine, 100)
    probe.add("nic", "x", lambda: 1)
    probe.start()
    probe.start()
    assert engine.pending == 1


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        SamplingProbe(Engine(), 0)


def test_probe_does_not_perturb_other_events():
    # pure observer: event times with and without a probe are identical
    def run(with_probe):
        engine = Engine()
        times = []
        for d in (30, 70, 110, 400):
            engine.schedule(d, lambda: times.append(engine.now))
        if with_probe:
            probe = SamplingProbe(engine, 25)
            probe.add("nic", "x", lambda: 1)
            probe.start()
        engine.run(until=500)
        return times

    assert run(False) == run(True)
