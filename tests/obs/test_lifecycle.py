"""The flight recorder's invariants, unit- and property-tested.

The load-bearing properties: every recorded lifecycle is monotone in
time and carries **exactly one** terminal stage (at the end), whatever
benchmark, backend, queue depth or protocol (eager/rendezvous) produced
it.  Attribution's telescoping fold builds directly on these.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import Telemetry
from repro.obs.lifecycle import (
    LifecycleRecorder,
    MessageLifecycle,
    NULL_LIFECYCLE,
    TERMINAL_STAGE,
    lifecycle_chrome_events,
)
from repro.portals.table import MatchListEntry, PortalTable
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import nic_preset
from repro.workloads.unexpected import UnexpectedParams, run_unexpected


def assert_well_formed(lifecycle: MessageLifecycle) -> None:
    """Monotone marks; the terminal stage appears exactly once, last."""
    times = [mark.time_ps for mark in lifecycle.marks]
    assert times == sorted(times), f"non-monotone: {lifecycle.marks}"
    terminals = [
        index
        for index, mark in enumerate(lifecycle.marks)
        if mark.stage == TERMINAL_STAGE
    ]
    if lifecycle.complete:
        assert terminals == [len(lifecycle.marks) - 1]
    else:
        assert terminals == []


class TestRecorderUnit:
    def test_begin_mark_complete(self):
        recorder = LifecycleRecorder()
        clock = [100]
        recorder.attach_clock(lambda: clock[0])
        recorder.begin("send", 0, 1, detail={"tag": 9})
        clock[0] = 250
        recorder.mark_request(0, 1, "host_issue")
        recorder.complete_request(0, 1, 400, recv=False)  # annotation only
        recorder.begin("recv", 1, 1)
        recorder.complete_request(1, 1, 500, recv=True)
        send, recv = recorder.lifecycles
        assert [m.stage for m in send.marks] == ["api_post", "host_issue"]
        assert send.annotations["sender_completed_at_ps"] == 400
        assert not send.complete
        assert recv.complete and recv.end_ps == 500
        for lifecycle in recorder.lifecycles:
            assert_well_formed(lifecycle)

    def test_uid_binding_alias_and_watch(self):
        recorder = LifecycleRecorder()
        recorder.attach_clock(lambda: 0)
        recorder.begin("send", 0, 7, 10)
        recorder.bind_uid(0, 7, 100)
        recorder.mark_uid(100, "wire", 20)
        recorder.alias_uid(200, 100)  # receive-side entry joins the message
        recorder.mark_uid(200, "deliver", 30)
        recorder.watch_completion(1, 3, 100)
        recorder.complete_request(1, 3, 40, recv=True)
        (send,) = recorder.lifecycles
        assert [m.stage for m in send.marks] == [
            "api_post",
            "wire",
            "deliver",
            TERMINAL_STAGE,
        ]
        assert send.complete
        assert_well_formed(send)

    def test_unknown_uid_is_silently_ignored(self):
        recorder = LifecycleRecorder()
        recorder.mark_uid(999, "wire")
        recorder.annotate_uid(999, a=1)
        recorder.alias_uid(1, 2)
        assert recorder.lifecycles == []

    def test_annotate_merges_into_last_mark(self):
        recorder = LifecycleRecorder()
        recorder.begin("send", 0, 1, 5, detail={"a": 1})
        recorder.annotate_request(0, 1, b=2)
        (lifecycle,) = recorder.lifecycles
        assert lifecycle.marks[-1].detail == {"a": 1, "b": 2}

    def test_search_notes_drain(self):
        recorder = LifecycleRecorder()
        recorder.search_note(alpu_occupancy=17)
        recorder.search_note(hash_probes=4)
        assert recorder.pop_search_notes() == {
            "alpu_occupancy": 17,
            "hash_probes": 4,
        }
        assert recorder.pop_search_notes() == {}

    def test_null_recorder_is_inert(self):
        assert not NULL_LIFECYCLE.enabled
        NULL_LIFECYCLE.begin("send", 0, 1)
        NULL_LIFECYCLE.mark_request(0, 1, "x")
        NULL_LIFECYCLE.mark_uid(1, "x")
        NULL_LIFECYCLE.complete_request(0, 1, recv=True)
        assert len(NULL_LIFECYCLE) == 0
        assert NULL_LIFECYCLE.lifecycles == ()
        assert NULL_LIFECYCLE.chrome_events() == []

    def test_dump_round_trip(self):
        recorder = LifecycleRecorder()
        recorder.begin("send", 0, 1, 5, detail={"tag": 3})
        recorder.label_request(0, 1, "ping", timed=True)
        recorder.bind_uid(0, 1, 42)
        recorder.mark_uid(42, "wire", 9)
        obj = recorder.to_obj()
        rebuilt = [MessageLifecycle.from_obj(o) for o in obj["lifecycles"]]
        assert [lc.to_obj() for lc in rebuilt] == obj["lifecycles"]
        assert rebuilt[0].label == "ping" and rebuilt[0].meta == {"timed": True}

    def test_chrome_events_pair_spans(self):
        recorder = LifecycleRecorder()
        recorder.begin("send", 0, 1, 0)
        recorder.mark_request(0, 1, "wire", 1_000_000)
        recorder.complete_request(0, 1, 3_000_000, recv=False)
        recorder.begin("recv", 1, 1, 0)
        recorder.complete_request(1, 1, 2_000_000, recv=True)
        events = lifecycle_chrome_events(recorder.lifecycles)
        names = [e["name"] for e in events if e["ph"] == "B"]
        assert "api_post" in names and "wire" in names
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        # the last span of an incomplete lifecycle stays open
        assert begins == ends + 1


class TestBenchmarkLifecycles:
    """Whole-run well-formedness across backends and protocols."""

    @pytest.mark.parametrize("preset", ["baseline", "hash", "alpu128"])
    def test_preposted_lifecycles_well_formed(self, preset):
        bundle = Telemetry(tracing=False, lifecycle=True)
        run_preposted(
            nic_preset(preset),
            PrepostedParams(
                queue_length=12, traverse_fraction=0.5, iterations=3, warmup=1
            ),
            telemetry=bundle,
        )
        lifecycles = bundle.lifecycles()
        assert lifecycles
        for lifecycle in lifecycles:
            assert_well_formed(lifecycle)

    @pytest.mark.parametrize("preset", ["baseline", "hash", "alpu128"])
    def test_unexpected_lifecycles_well_formed(self, preset):
        bundle = Telemetry(tracing=False, lifecycle=True)
        run_unexpected(
            nic_preset(preset),
            UnexpectedParams(queue_length=10, iterations=3, warmup=1),
            telemetry=bundle,
        )
        for lifecycle in bundle.lifecycles():
            assert_well_formed(lifecycle)

    def test_rendezvous_lifecycles_well_formed(self):
        # payload above the 4096-byte eager threshold exercises the
        # RTS/CTS/DATA marks (rndv_cts, rndv_data_dma, repeated wire)
        bundle = Telemetry(tracing=False, lifecycle=True)
        run_preposted(
            nic_preset("baseline"),
            PrepostedParams(
                queue_length=4, message_size=16384, iterations=2, warmup=1
            ),
            telemetry=bundle,
        )
        stages = set()
        for lifecycle in bundle.lifecycles():
            assert_well_formed(lifecycle)
            stages.update(mark.stage for mark in lifecycle.marks)
        assert "rndv_cts" in stages and "rndv_data_dma" in stages

    @given(
        queue_length=st.integers(min_value=1, max_value=20),
        fraction=st.sampled_from([0.0, 0.5, 1.0]),
        preset=st.sampled_from(["baseline", "alpu128"]),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_monotone_single_terminal(
        self, queue_length, fraction, preset
    ):
        bundle = Telemetry(tracing=False, lifecycle=True)
        run_preposted(
            nic_preset(preset),
            PrepostedParams(
                queue_length=queue_length,
                traverse_fraction=fraction,
                iterations=2,
                warmup=0,
            ),
            telemetry=bundle,
        )
        lifecycles = bundle.lifecycles()
        assert lifecycles
        for lifecycle in lifecycles:
            assert_well_formed(lifecycle)


class TestPortalsLifecycle:
    def test_me_lifecycles(self):
        recorder = LifecycleRecorder()
        table = PortalTable(lifecycle=recorder)
        once = MatchListEntry(match_bits=0xAB)
        sticky = MatchListEntry(match_bits=0xCD, use_once=False)
        spare = MatchListEntry(match_bits=0xEF)
        for entry in (once, sticky, spare):
            table.append(entry)
        assert table.deliver(0xAB) is once
        assert table.deliver(0xCD) is sticky
        assert table.deliver(0xCD) is sticky  # persistent: matches again
        table.unlink(spare)
        by_id = {lc.req_id: lc for lc in recorder.lifecycles}
        assert by_id[once.me_id].complete
        assert by_id[once.me_id].marks[-1].detail == {"outcome": "matched"}
        assert by_id[spare.me_id].marks[-1].detail == {"outcome": "unlinked"}
        sticky_stages = [m.stage for m in by_id[sticky.me_id].marks]
        assert sticky_stages == ["me_linked", "matched", "matched"]
        for lifecycle in recorder.lifecycles:
            assert_well_formed(lifecycle)

    def test_table_without_recorder_unchanged(self):
        table = PortalTable()
        entry = MatchListEntry(match_bits=1)
        table.append(entry)
        assert table.deliver(1) is entry
        assert len(table) == 0
