"""Figure 6: growth of latency with unexpected queue length.

Regenerates the three curves (baseline, 128-entry ALPU, 256-entry ALPU)
of message latency -- including the time to post the measuring receive --
against the number of unexpected messages queued ahead of it, and asserts
the paper's observations:

* with short unexpected queues the ALPU shows a small loss (tens of ns);
* past a moderate queue length the ALPU offers a clear, significant
  advantage (the paper's simulation puts the clear-win point near 70);
* the baseline shows the cache-exhaustion knee; the ALPU delays it.
"""

import pytest



from repro.analysis.curves import crossover_length, detect_knee
from repro.analysis.tables import format_curve
from repro.workloads.runner import nic_preset
from repro.workloads.unexpected import UnexpectedParams, run_unexpected

#: full Figure-6 unexpected-queue grid -- excluded from the tier-1 run
pytestmark = pytest.mark.slow

LENGTHS = [0, 5, 10, 20, 40, 70, 100, 150, 200, 256, 300]
ITERS = dict(iterations=6, warmup=2)


def sweep(preset):
    series = []
    for length in LENGTHS:
        result = run_unexpected(
            nic_preset(preset), UnexpectedParams(queue_length=length, **ITERS)
        )
        series.append(result.median_ns)
    return series


def regenerate():
    return {preset: sweep(preset) for preset in ("baseline", "alpu128", "alpu256")}


def test_fig6(benchmark, once):
    curves = once(benchmark, regenerate)
    print()
    print("FIGURE 6 -- latency vs unexpected queue length (ns)")
    print("lengths   ", "  ".join(str(x) for x in LENGTHS))
    for preset, series in curves.items():
        print(format_curve(preset, LENGTHS, series))

    baseline = curves["baseline"]
    alpu128 = curves["alpu128"]
    alpu256 = curves["alpu256"]

    short_loss_128 = alpu128[0] - baseline[0]
    short_loss_256 = alpu256[0] - baseline[0]
    win_point_128 = crossover_length(LENGTHS, baseline, LENGTHS, alpu128)
    # the cache knee is sought in the linear-growth region; below ~40
    # entries the receive-posting time is partly overlapped with the
    # transfer ("as conservatively as possible"), which is a protocol
    # transition, not the cache effect
    growth_start = LENGTHS.index(40)
    baseline_knee = detect_knee(LENGTHS[growth_start:], baseline[growth_start:])
    print(
        f"\nshort-queue ALPU loss: {short_loss_128:+.0f} / "
        f"{short_loss_256:+.0f} ns (paper: a few tens of ns); "
        f"baseline overtakes the 128-entry ALPU at {win_point_128:.0f} "
        "entries (paper: clear advantage past ~70); "
        f"baseline cache knee at {baseline_knee} entries"
    )

    # small loss at empty/short queues
    assert 0 <= short_loss_128 < 150
    assert 0 <= short_loss_256 < 150
    # the clear advantage arrives by moderate queue lengths
    assert win_point_128 is not None and win_point_128 <= 70
    for length in (100, 150, 200, 256, 300):
        index = LENGTHS.index(length)
        assert alpu128[index] < baseline[index]
        assert alpu256[index] < baseline[index]
    # the 256-entry unit holds every studied queue: essentially flat
    assert max(alpu256[:-1]) - min(alpu256[:-1]) < 80
    # the baseline knees once the L1 is exhausted; the ALPU curves do not
    # knee anywhere in the studied range
    assert baseline_knee is not None and 150 <= baseline_knee <= 300
    assert detect_knee(LENGTHS[growth_start:], alpu256[growth_start:]) is None
    # baseline grows monotonically (within jitter) past the overlap zone
    grow = [x for x in LENGTHS if x >= 40]
    for a, b in zip(grow, grow[1:]):
        assert baseline[LENGTHS.index(b)] >= baseline[LENGTHS.index(a)] - 30
