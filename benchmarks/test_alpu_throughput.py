"""Implementation microbenchmark: behavioural-ALPU operation throughput.

Unlike the table/figure reproductions (single-shot simulations), this is
a conventional pytest-benchmark measurement of the *simulator itself*:
how fast the behavioural ALPU model executes match and insert
transactions.  It guards the hot loop that every Figure 5/6 point runs
millions of times, and it compares against the reference list to show
the model's cost is in the same league as the oracle it replaces.
"""


from repro.core.alpu import Alpu, AlpuConfig
from repro.core.commands import Insert, StartInsert, StopInsert
from repro.core.match import MatchEntry, MatchFormat, MatchRequest
from repro.core.reference import ReferenceMatchList

FMT = MatchFormat()
DEPTH = 200  # entries resident during the match storm


def loaded_alpu():
    alpu = Alpu(AlpuConfig(total_cells=256, block_size=16))
    alpu.submit(StartInsert())
    for i in range(DEPTH):
        alpu.submit(Insert(FMT.pack(1, i % 32, i % 64), 0, i))
    alpu.submit(StopInsert())
    return alpu


def test_alpu_match_and_reinsert_throughput(benchmark):
    alpu = loaded_alpu()
    probe = MatchRequest(bits=FMT.pack(1, 5, 5))
    replace = Insert(FMT.pack(1, 5, 5), 0, 999)

    def match_and_reinsert():
        responses = alpu.present_header(probe)
        alpu.submit(StartInsert())
        alpu.submit(replace)
        alpu.submit(StopInsert())
        return responses

    result = benchmark(match_and_reinsert)
    assert len(result) == 1


def test_alpu_failed_match_throughput(benchmark):
    """A miss scans every block: the worst-case hot path."""
    alpu = loaded_alpu()
    probe = MatchRequest(bits=FMT.pack(2, 0, 0))  # wrong context: never hits
    result = benchmark(lambda: alpu.present_header(probe))
    assert len(result) == 1


def test_reference_list_throughput(benchmark):
    """The oracle's cost, for comparison with the model's."""
    reference = ReferenceMatchList()
    for i in range(DEPTH):
        reference.append(MatchEntry(FMT.pack(1, i % 32, i % 64), 0, i))
    probe = MatchRequest(bits=FMT.pack(2, 0, 0))
    matched, traversed = benchmark(lambda: reference.match(probe))
    assert matched is None and traversed == DEPTH
