"""Figure 5: growth of latency with posted-receive queue length.

Three panels-worth of data: the baseline NIC (5a/5b), a 128-entry ALPU
(5c/5d) and a 256-entry ALPU (5e/5f).  Each regenerates the latency
surface over (queue length x fraction traversed) and asserts the shape
the paper reports:

* baseline: ~15 ns per traversed entry while warm, a cache knee once the
  queue outgrows the NIC's 32 KB L1, and ~64 ns per entry beyond it;
* ALPU: a flat curve until the queue length crosses the ALPU capacity,
  a fixed overhead of tens of ns at zero length with break-even around
  5 entries, and -- past capacity -- software-suffix growth with the
  cache knee pushed out.
"""

import pytest


from repro.analysis.curves import (
    crossover_length,
    detect_knee,
    per_entry_slope_ns,
)
from repro.analysis.tables import format_curve
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import nic_preset

#: full Figure-5 (queue length x fraction) grid -- excluded from the tier-1 run
pytestmark = pytest.mark.slow

LENGTHS = [1, 2, 5, 8, 16, 32, 64, 128, 160, 200, 256, 320, 400, 500]
FRACTIONS = [0.25, 0.5, 0.75, 1.0]
ITERS = dict(iterations=6, warmup=2)


def sweep(preset):
    surface = {}
    for fraction in FRACTIONS:
        series = []
        for length in LENGTHS:
            result = run_preposted(
                nic_preset(preset),
                PrepostedParams(
                    queue_length=length, traverse_fraction=fraction, **ITERS
                ),
            )
            series.append(result.median_ns)
        surface[fraction] = series
    return surface


def show(title, surface):
    print()
    print(title)
    print("latency (ns) by queue length, one series per traversal fraction:")
    print("lengths   ", "  ".join(str(x) for x in LENGTHS))
    for fraction, series in surface.items():
        print(format_curve(f"f={fraction:.2f}", LENGTHS, series))


@pytest.fixture(scope="module")
def baseline_surface():
    return sweep("baseline")


def test_fig5ab_baseline(benchmark, once, baseline_surface):
    surface = once(benchmark, lambda: baseline_surface)
    show("FIGURE 5(a,b) -- baseline NIC", surface)
    full = surface[1.0]
    warm_slope = per_entry_slope_ns(LENGTHS, full, hi=128)
    knee = detect_knee(LENGTHS, full)
    cold_slope = per_entry_slope_ns(LENGTHS, full, lo=320)
    anchor_400 = full[LENGTHS.index(400)]
    anchor_80pct_500 = surface[0.75][LENGTHS.index(500)]
    print(
        f"\nwarm slope {warm_slope:.1f} ns/entry (paper ~15), "
        f"knee at {knee} entries (32KB L1), "
        f"cold slope {cold_slope:.1f} ns/entry (paper ~64), "
        f"400-entry full traversal {anchor_400/1000:.1f} us (paper 13), "
        f"75% of 500 {anchor_80pct_500/1000:.1f} us (paper ~24 at 80%)"
    )
    assert 10 <= warm_slope <= 20
    assert knee is not None and 128 <= knee <= 400
    assert cold_slope >= 2.5 * warm_slope
    assert 45 <= cold_slope <= 90
    # deeper traversal fractions always cost at least as much
    for i, length in enumerate(LENGTHS):
        if length >= 8:
            assert surface[1.0][i] >= surface[0.25][i]


def run_alpu_panel(preset, capacity, baseline_surface):
    surface = sweep(preset)
    full = surface[1.0]
    baseline_full = baseline_surface[1.0]
    in_capacity = [x for x in LENGTHS if x <= capacity]
    flat = [full[LENGTHS.index(x)] for x in in_capacity]
    overhead = full[0] - baseline_full[0]
    breakeven = crossover_length(LENGTHS, baseline_full, LENGTHS, full)
    return surface, full, flat, overhead, breakeven


def check_alpu_panel(title, capacity, surface, full, flat, overhead, breakeven,
                     baseline_surface):
    show(title, surface)
    print(
        f"\nflat region spread {max(flat) - min(flat):.0f} ns, "
        f"zero-length overhead {overhead:+.0f} ns (paper ~+80), "
        f"break-even at {breakeven:.1f} entries (paper ~5)"
    )
    # the dramatic advantage: flat until capacity
    assert max(flat) - min(flat) < 60
    # the penalty: tens of ns, not more
    assert 0 < overhead < 150
    # break-even within a handful of entries
    assert breakeven is not None and breakeven <= 12
    # beyond capacity the software suffix grows, but far below baseline
    beyond = [x for x in LENGTHS if x > capacity]
    if beyond:
        baseline_full = baseline_surface[1.0]
        for length in beyond:
            index = LENGTHS.index(length)
            assert full[index] < baseline_full[index]


def test_fig5cd_alpu128(benchmark, once, baseline_surface):
    result = once(
        benchmark, lambda: run_alpu_panel("alpu128", 128, baseline_surface)
    )
    surface, full, flat, overhead, breakeven = result
    check_alpu_panel(
        "FIGURE 5(c,d) -- 128-entry ALPU", 128, surface, full, flat,
        overhead, breakeven, baseline_surface,
    )
    # the cache knee is *delayed* relative to the baseline: the ALPU
    # spares the processor the first 128 entries' worth of cache traffic
    baseline_knee = detect_knee(LENGTHS, baseline_surface[1.0])
    alpu_knee = detect_knee(LENGTHS, full)
    assert alpu_knee is None or alpu_knee > baseline_knee


def test_fig5ef_alpu256(benchmark, once, baseline_surface):
    result = once(
        benchmark, lambda: run_alpu_panel("alpu256", 256, baseline_surface)
    )
    surface, full, flat, overhead, breakeven = result
    check_alpu_panel(
        "FIGURE 5(e,f) -- 256-entry ALPU", 256, surface, full, flat,
        overhead, breakeven, baseline_surface,
    )
    # the 256-entry unit stays flat where the 128-entry unit has begun
    # to grow: its flat region covers 200 and 256
    index_256 = LENGTHS.index(256)
    assert full[index_256] - full[0] < 60
