"""Ablation: the hash-table alternative of Section II.

"Hash tables can significantly reduce the time needed to find a matching
entry, but can also significantly increase the time needed to insert an
entry into the list.  Unfortunately, this increase in insertion time has
been prohibitive ... especially noticeable in the zero-length ping-pong
latency test."

This benchmark measures all three corners of that argument on the same
simulated system:

1. the zero-length ping-pong regression (hash loses to the list);
2. the long-queue search win (hash beats the list, like the ALPU);
3. the wildcard reverse-lookup degeneration (ANY_SOURCE receives force
   full scans of the unexpected table).
"""

import pytest



from repro.analysis.tables import format_rows
from repro.nic.firmware import FirmwareConfig
from repro.nic.nic import NicConfig
from repro.workloads.pingpong import PingPongParams, run_pingpong
from repro.workloads.preposted import PrepostedParams, run_preposted

#: full hash-ablation grid -- excluded from the tier-1 run
pytestmark = pytest.mark.slow

LIST_NIC = NicConfig.baseline()
HASH_NIC = NicConfig(firmware=FirmwareConfig(matching="hash"))
ALPU_NIC = NicConfig.with_alpu(256, 16)
ITERS = dict(iterations=6, warmup=2)


def regenerate():
    pingpong = {
        name: run_pingpong(nic, PingPongParams(iterations=8, warmup=3)).mean_ns
        for name, nic in (("list", LIST_NIC), ("hash", HASH_NIC), ("alpu", ALPU_NIC))
    }
    depth = {}
    for name, nic in (("list", LIST_NIC), ("hash", HASH_NIC), ("alpu", ALPU_NIC)):
        series = []
        for length in (1, 32, 128, 256):
            result = run_preposted(
                nic,
                PrepostedParams(queue_length=length, traverse_fraction=1.0, **ITERS),
            )
            series.append(result.median_ns)
        depth[name] = series
    return pingpong, depth


def test_hash_ablation(benchmark, once):
    pingpong, depth = once(benchmark, regenerate)
    print()
    print("ABLATION -- hash-table matching vs list vs ALPU")
    print(format_rows(
        ["engine", "0B ping-pong (ns)", "L=1", "L=32", "L=128", "L=256"],
        [
            [name, f"{pingpong[name]:.0f}"] + [f"{x:.0f}" for x in depth[name]]
            for name in ("list", "hash", "alpu")
        ],
    ))
    # corner 1: the zero-length regression is real and significant
    assert pingpong["hash"] > pingpong["list"] + 100
    # and the ALPU does NOT pay it anywhere near as badly -- that is the
    # design win of the paper
    assert pingpong["alpu"] - pingpong["list"] < 0.75 * (
        pingpong["hash"] - pingpong["list"]
    )
    # corner 2: at long queues the hash beats the traversing list...
    assert depth["hash"][-1] < 0.5 * depth["list"][-1]
    # ...but the ALPU beats or matches the hash without the insert tax
    assert depth["alpu"][-1] <= depth["hash"][-1] * 1.05
