"""Ablation: the "space available" compaction rule (Section III-B).

The FPGA prototype restricts insert-mode compaction for timing: a cell
may shift only if a higher cell in its own block or the lowest cell of
the next block is empty.  The paper notes the rule "could easily be
expanded to include ... any cell in any higher block if timing
constraints permitted" and judges the restricted rule "likely sufficient
for all real cases".

This benchmark quantifies that judgement on the behavioural model: under
a hole-heavy churn pattern (interleaved matches and single-entry insert
batches), it counts the compaction clocks and the insert stalls each rule
needs.  The block rule needs a few more compaction steps but -- as the
paper predicted -- virtually never stalls an insert.
"""

import random

from repro.analysis.tables import format_rows
from repro.core.alpu import Alpu, AlpuConfig, CompactionReach
from repro.core.commands import Insert, StartInsert, StopInsert
from repro.core.match import MatchFormat, MatchRequest

FMT = MatchFormat()


def churn(reach: CompactionReach, block_size: int, seed: int = 7):
    """Random high-turnover traffic; returns stall/step counters."""
    alpu = Alpu(
        AlpuConfig(total_cells=128, block_size=block_size, compaction_reach=reach)
    )
    rng = random.Random(seed)
    live = []
    next_tag = iter(range(1_000_000))
    for _ in range(400):
        if live and rng.random() < 0.5:
            # match (and delete) a random live entry
            bits = live.pop(rng.randrange(len(live)))
            alpu.present_header(MatchRequest(bits=bits))
        elif alpu.free_entries:
            alpu.submit(StartInsert())
            for _ in range(rng.randint(1, 3)):
                if not alpu.free_entries:
                    break
                bits = FMT.pack(1, rng.randrange(64), rng.randrange(64))
                alpu.submit(Insert(bits, 0, next(next_tag) % 65536))
                live.append(bits)
            alpu.submit(StopInsert())
    return alpu.stats


def regenerate():
    rows = []
    for block_size in (8, 16, 32):
        for reach in (CompactionReach.BLOCK, CompactionReach.GLOBAL):
            stats = churn(reach, block_size)
            rows.append(
                (
                    block_size,
                    reach.value,
                    stats.inserts,
                    stats.compaction_steps,
                    stats.insert_stall_cycles,
                )
            )
    return rows


def test_compaction_ablation(benchmark, once):
    rows = once(benchmark, regenerate)
    print()
    print("ABLATION -- insert-mode compaction reach under churn")
    print(format_rows(
        ["block", "reach", "inserts", "compaction steps", "insert stalls"],
        rows,
    ))
    by_key = {(block, reach): (inserts, steps, stalls)
              for block, reach, inserts, steps, stalls in rows}
    for block_size in (8, 16, 32):
        inserts, _, block_stalls = by_key[(block_size, "block")]
        _, _, global_stalls = by_key[(block_size, "global")]
        # the paper's judgement: the restricted rule is "likely sufficient
        # for all real cases" -- it costs a fraction of a clock per insert
        # (sub-nanosecond at 500 MHz), not pipeline-visible delays
        assert block_stalls / inserts < 0.5
        # the relaxed rule eliminates stalls entirely...
        assert global_stalls == 0
        # ...which is the timing-vs-control trade the paper describes
        assert global_stalls <= block_stalls
    # stalls shrink as blocks grow (holes cross fewer boundaries)
    assert by_key[(32, "block")][2] <= by_key[(8, "block")][2]
