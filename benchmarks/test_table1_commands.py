"""Table I: the ALPU command set.

Regenerates the command-set table from the implemented protocol types and
verifies the implementation exposes exactly the paper's four commands
with the paper's parameters.
"""

import dataclasses

from repro.core.commands import (
    Insert,
    Reset,
    StartInsert,
    StopInsert,
    TABLE_I_ROWS,
)
from repro.analysis.tables import format_rows


def regenerate():
    implemented = {
        "START INSERT": StartInsert,
        "INSERT": Insert,
        "STOP INSERT": StopInsert,
        "RESET": Reset,
    }
    rows = []
    for name, description, inputs in TABLE_I_ROWS:
        command_type = implemented[name]
        fields = [f.name for f in dataclasses.fields(command_type)]
        rows.append((name, description, inputs, ", ".join(fields) or "-"))
    return rows


def test_table1(benchmark, once):
    rows = once(benchmark, regenerate)
    print()
    print("TABLE I -- ASSOCIATIVE LIST PROCESSING UNIT COMMAND SET")
    print(
        format_rows(
            ["Command", "Description", "Inputs (paper)", "Fields (impl)"], rows
        )
    )
    # exactly the paper's four commands, and only INSERT takes parameters
    assert [r[0] for r in rows] == ["START INSERT", "INSERT", "STOP INSERT", "RESET"]
    assert rows[1][3] == "match_bits, mask_bits, tag"
    for name, _, _, fields in rows:
        if name != "INSERT":
            assert fields == "-"
