"""Table III: processor simulation parameters.

Regenerates the parameter table from the implemented configurations and
verifies that the *derived* quantities the system simulation actually
uses land where the table says: clock periods, cache geometries, and the
measured load-to-use latency bands of both memory hierarchies.
"""

from repro.analysis.tables import format_rows
from repro.proc.params import (
    CPU_PARAMS,
    NIC_PARAMS,
    NETWORK_WIRE_LATENCY_PS,
    TABLE_III_ROWS,
    make_host_memory,
    make_nic_memory,
)
from repro.sim.units import cycles_to_ps


def regenerate():
    # measure nominal load-to-use on both hierarchies: page-hit and
    # activate paths on cold, conflict-free addresses
    nic_memory = make_nic_memory()
    host_memory = make_host_memory()
    nic_cycle = cycles_to_ps(1, NIC_PARAMS.clock_hz)
    host_cycle = cycles_to_ps(1, CPU_PARAMS.clock_hz)
    nic_band = sorted(
        round(nic_memory.access(0x100000 + i * 64) / nic_cycle) for i in range(2)
    )
    host_band = sorted(
        round(host_memory.access(0x100000 + i * 64) / host_cycle) for i in range(2)
    )
    return nic_band, host_band


def test_table3(benchmark, once):
    nic_band, host_band = once(benchmark, regenerate)
    print()
    print("TABLE III -- PROCESSOR SIMULATION PARAMETERS")
    print(format_rows(["Parameter", "CPU", "NIC Processor"], TABLE_III_ROWS))
    print(
        f"\nmeasured load-to-use: host {host_band} cycles (paper: 85-90), "
        f"NIC {nic_band} cycles (paper: 30-32)"
    )
    # structural parameters recorded verbatim
    assert CPU_PARAMS.clock_hz == 2e9 and NIC_PARAMS.clock_hz == 500e6
    assert CPU_PARAMS.issue_width == 8 and NIC_PARAMS.issue_width == 4
    assert NIC_PARAMS.l1_desc == "32K 64-way" and CPU_PARAMS.l2_desc == "512K"
    assert NETWORK_WIRE_LATENCY_PS == 200_000
    # derived latency bands bracket the published ones
    assert 28 <= nic_band[0] and nic_band[1] <= 32
    assert 80 <= host_band[0] and host_band[1] <= 95
