"""Table IV: sizes and speeds of the Posted Receives ALPU prototypes.

Regenerates the table from the structural resource model and asserts
agreement with every published design point within 1.5%, plus the trends
the paper discusses (FFs fall / LUTs rise with block size; block size 32
misses the 9 ns timing constraint; the latency column).
"""

from repro.core.cell import CellKind
from repro.fpga.report import TABLE_IV_PUBLISHED, model_table, render_table

TOLERANCE = 0.015


def regenerate():
    return model_table(CellKind.POSTED_RECEIVE)


def test_table4(benchmark, once):
    model = once(benchmark, regenerate)
    print()
    print(render_table(
        "TABLE IV -- POSTED RECEIVES ALPU PROTOTYPES (model vs published)",
        model,
        TABLE_IV_PUBLISHED,
    ))
    for modeled, paper in zip(model, TABLE_IV_PUBLISHED):
        for field in ("luts", "flipflops", "slices"):
            a, b = getattr(modeled, field), getattr(paper, field)
            assert abs(a - b) / b < TOLERANCE
        assert abs(modeled.speed_mhz - paper.speed_mhz) / paper.speed_mhz < TOLERANCE
        assert modeled.latency_cycles == paper.latency_cycles
    # trends at 256 cells
    big = [m for m in model if m.total_cells == 256]
    assert big[0].flipflops > big[1].flipflops > big[2].flipflops
    assert big[0].luts < big[1].luts < big[2].luts
    assert big[2].speed_mhz < big[0].speed_mhz  # block 32 misses 9 ns
