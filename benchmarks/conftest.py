"""Shared helpers for the table/figure reproduction benchmarks.

Every benchmark in this directory regenerates one table or figure from
the paper, printing paper-style rows and asserting the *qualitative*
shape (who wins, where knees and crossovers fall), never absolute
nanoseconds.  All use the ``benchmark`` fixture in pedantic single-shot
mode: the interesting output is the regenerated artifact; the timing
pytest-benchmark records is the cost of the simulation itself.

Run with::

    pytest benchmarks/ -m "" --benchmark-only

(the full-grid modules are marked ``slow``; ``-m ""`` lifts the default
``-m 'not slow'`` filter)
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
