"""Ablation: the ALPU engagement threshold heuristic (Section IV-B/VI-B).

"Because using the ALPU will incur a certain amount of overhead, the
software must only use it when the queue is adequately long. ... With 5
entries in the posted receive queue, the ALPU breaks even.  Thus, it is
entirely possible that the MPI library could be optimized to not use the
ALPU until the list is at least 5 entries long."

Sweeps the driver's ``use_threshold``: with the threshold at the paper's
suggested 5, short queues run at baseline speed (the threshold keeps the
ALPU idle) while long queues still get the flat ALPU curve.
"""

import pytest


import dataclasses

from repro.analysis.tables import format_rows
from repro.nic.driver import DriverConfig
from repro.nic.nic import NicConfig
from repro.workloads.preposted import PrepostedParams, run_preposted

#: full threshold-ablation grid -- excluded from the tier-1 run
pytestmark = pytest.mark.slow

LENGTHS = [1, 2, 4, 8, 16, 64, 128]
ITERS = dict(iterations=6, warmup=2)


def nic_with_threshold(threshold: int) -> NicConfig:
    base = NicConfig.with_alpu(256, 16)
    return dataclasses.replace(
        base,
        posted_driver=DriverConfig(use_threshold=threshold),
        unexpected_driver=DriverConfig(use_threshold=threshold),
    )


def regenerate():
    curves = {"baseline": [], "threshold=1": [], "threshold=5": []}
    for length in LENGTHS:
        params = PrepostedParams(
            queue_length=length, traverse_fraction=1.0, **ITERS
        )
        curves["baseline"].append(
            run_preposted(NicConfig.baseline(), params).median_ns
        )
        curves["threshold=1"].append(
            run_preposted(nic_with_threshold(1), params).median_ns
        )
        curves["threshold=5"].append(
            run_preposted(nic_with_threshold(5), params).median_ns
        )
    return curves


def test_threshold_ablation(benchmark, once):
    curves = once(benchmark, regenerate)
    print()
    print("ABLATION -- ALPU engagement threshold (latency in ns)")
    print(format_rows(
        ["queue length"] + [str(x) for x in LENGTHS],
        [[name] + [f"{x:.0f}" for x in series] for name, series in curves.items()],
    ))
    baseline = curves["baseline"]
    always = curves["threshold=1"]
    thresholded = curves["threshold=5"]
    # below the threshold, the thresholded driver matches the baseline
    # (no ALPU interaction overhead)...
    for i, length in enumerate(LENGTHS):
        if length < 5:
            assert abs(thresholded[i] - baseline[i]) < 30
    # ...while the always-on driver pays its fixed overhead there
    assert always[0] > baseline[0] + 30
    # at long queues both ALPU variants converge and crush the baseline
    tail = LENGTHS.index(128)
    assert abs(thresholded[tail] - always[tail]) < 60
    assert thresholded[tail] < 0.6 * baseline[tail]