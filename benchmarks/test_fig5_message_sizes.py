"""Figure 5's third degree of freedom: message size.

The preposted benchmark exposes "the size of the message" alongside queue
length and traversal fraction.  This benchmark fixes a moderate queue and
sweeps the payload across the eager range and past the rendezvous switch,
verifying that:

* the queue-traversal penalty is *additive*: at every size, the baseline
  pays the same ~depth x 14 ns on top of the transfer time;
* the ALPU's advantage is therefore size-independent in absolute terms
  (and fades in relative terms as bandwidth dominates) -- which is why
  the paper studies small messages.
"""

import pytest


from repro.analysis.tables import format_rows
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import nic_preset

#: full message-size grid -- excluded from the tier-1 run
pytestmark = pytest.mark.slow

SIZES = [0, 256, 1024, 4096, 16384]  # the last one goes rendezvous
QUEUE_LENGTH = 64
ITERS = dict(iterations=6, warmup=2)


def regenerate():
    table = {}
    for preset in ("baseline", "alpu128"):
        series = []
        for size in SIZES:
            deep = run_preposted(
                nic_preset(preset),
                PrepostedParams(
                    queue_length=QUEUE_LENGTH,
                    traverse_fraction=1.0,
                    message_size=size,
                    **ITERS,
                ),
            ).median_ns
            shallow = run_preposted(
                nic_preset(preset),
                PrepostedParams(
                    queue_length=QUEUE_LENGTH,
                    traverse_fraction=0.0,
                    message_size=size,
                    **ITERS,
                ),
            ).median_ns
            series.append((size, shallow, deep))
        table[preset] = series
    return table


def test_fig5_message_sizes(benchmark, once):
    table = once(benchmark, regenerate)
    print()
    print(
        f"FIGURE 5 third axis -- message size at queue length {QUEUE_LENGTH} "
        "(latency ns, shallow = depth 0, deep = full traversal)"
    )
    rows = []
    for preset, series in table.items():
        for size, shallow, deep in series:
            rows.append((preset, size, f"{shallow:.0f}", f"{deep:.0f}",
                         f"{deep - shallow:+.0f}"))
    print(format_rows(["preset", "bytes", "shallow", "deep", "traversal cost"], rows))

    baseline = table["baseline"]
    alpu = table["alpu128"]
    # latency grows with size on both NICs (bandwidth term)
    assert baseline[-1][2] > baseline[0][2]
    assert alpu[-1][2] > alpu[0][2]
    # the traversal penalty is roughly constant across eager sizes for
    # the baseline (additive model): ~63 x 14 ns
    penalties = [deep - shallow for _, shallow, deep in baseline[:4]]
    assert max(penalties) - min(penalties) < 0.5 * max(penalties)
    assert 500 < sum(penalties) / len(penalties) < 1500
    # while the ALPU's deep/shallow gap stays negligible at every size
    for _, shallow, deep in alpu:
        assert abs(deep - shallow) < 100
