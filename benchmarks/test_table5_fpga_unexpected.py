"""Table V: sizes and speeds of the Unexpected Messages ALPU prototypes.

As Table IV, for the mask-as-input cell flavour -- plus the comparison
the two tables exist to make: the unexpected ALPU needs ~33-40% fewer
flip-flops and slices for the same LUT budget, because receives carry
their wildcards with the request instead of storing them per cell.
"""

from repro.core.cell import CellKind
from repro.fpga.report import (
    TABLE_V_PUBLISHED,
    model_table,
    render_table,
)

TOLERANCE = 0.015


def regenerate():
    return model_table(CellKind.UNEXPECTED)


def test_table5(benchmark, once):
    model = once(benchmark, regenerate)
    print()
    print(render_table(
        "TABLE V -- UNEXPECTED MESSAGES ALPU PROTOTYPES (model vs published)",
        model,
        TABLE_V_PUBLISHED,
    ))
    for modeled, paper in zip(model, TABLE_V_PUBLISHED):
        for field in ("luts", "flipflops", "slices"):
            a, b = getattr(modeled, field), getattr(paper, field)
            assert abs(a - b) / b < TOLERANCE
        assert abs(modeled.speed_mhz - paper.speed_mhz) / paper.speed_mhz < TOLERANCE
        assert modeled.latency_cycles == paper.latency_cycles
    # the cross-table claim: masks-as-inputs saves a third of the FFs
    posted = model_table(CellKind.POSTED_RECEIVE)
    for unexpected_point, posted_point in zip(model, posted):
        ratio = unexpected_point.flipflops / posted_point.flipflops
        assert 0.55 < ratio < 0.70
        assert abs(unexpected_point.luts - posted_point.luts) < 50
