"""Table II: the ALPU response set.

Regenerates the response table and verifies the protocol invariants the
paper states alongside it, by driving a live ALPU:

* START ACKNOWLEDGE carries the number of free entries;
* MATCH SUCCESS carries the matched item's tag and can occur at any time;
* MATCH FAILURE cannot occur between START ACKNOWLEDGE and STOP INSERT.
"""

import dataclasses

from repro.analysis.tables import format_rows
from repro.core.alpu import Alpu, AlpuConfig
from repro.core.commands import (
    Insert,
    MatchFailure,
    MatchSuccess,
    StartAcknowledge,
    StartInsert,
    StopInsert,
    TABLE_II_ROWS,
)
from repro.core.match import MatchRequest


def regenerate():
    implemented = {
        "START ACKNOWLEDGE": StartAcknowledge,
        "MATCH SUCCESS": MatchSuccess,
        "MATCH FAILURE": MatchFailure,
    }
    rows = []
    for name, description, outputs in TABLE_II_ROWS:
        response_type = implemented[name]
        fields = [f.name for f in dataclasses.fields(response_type)]
        rows.append((name, description, outputs, ", ".join(fields) or "-"))

    # drive the protocol invariant: no failure inside an insert window
    alpu = Alpu(AlpuConfig(total_cells=16, block_size=4))
    transcript = list(alpu.submit(StartInsert()))
    transcript += alpu.present_header(MatchRequest(bits=5))  # held
    transcript += alpu.submit(Insert(1, 0, 1))
    transcript += alpu.submit(StopInsert())
    return rows, transcript


def test_table2(benchmark, once):
    rows, transcript = once(benchmark, regenerate)
    print()
    print("TABLE II -- ASSOCIATIVE LIST PROCESSING UNIT RESPONSES")
    print(
        format_rows(
            ["Response", "Description", "Outputs (paper)", "Fields (impl)"], rows
        )
    )
    assert [r[0] for r in rows] == [
        "START ACKNOWLEDGE",
        "MATCH SUCCESS",
        "MATCH FAILURE",
    ]
    # protocol: the failure for the header presented mid-window resolved
    # only after STOP INSERT, never between the acknowledge and the stop
    kinds = [type(r).__name__ for r in transcript]
    assert kinds == ["StartAcknowledge", "MatchFailure"]
